"""Point cloud file I/O: OFF, PLY (ascii) and XYZ formats.

ModelNet40 ships as OFF meshes, ShapeNet as point lists, and most
LiDAR tooling speaks PLY/XYZ; a usable point cloud library needs to
read and write all three.  Only the geometry channel is handled —
normals/colors are preserved as extra float columns where the format
allows.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "read_xyz",
    "write_xyz",
    "read_off",
    "write_off",
    "read_ply",
    "write_ply",
    "load_points",
    "save_points",
]


def write_xyz(path, points):
    """Write an (N, D>=3) array as whitespace-separated rows."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] < 3:
        raise ValueError("points must be (N, >=3)")
    np.savetxt(path, points, fmt="%.8g")


def read_xyz(path):
    """Read whitespace-separated point rows."""
    pts = np.loadtxt(path, dtype=np.float64, ndmin=2)
    if pts.shape[1] < 3:
        raise ValueError("XYZ file must have at least 3 columns")
    return pts


def write_off(path, points, faces=None):
    """Write an OFF file (vertices + optional triangular faces)."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError("OFF vertices must be (N, 3)")
    faces = np.asarray(faces, dtype=np.int64) if faces is not None else \
        np.zeros((0, 3), dtype=np.int64)
    with open(path, "w") as fh:
        fh.write("OFF\n")
        fh.write(f"{len(points)} {len(faces)} 0\n")
        for p in points:
            fh.write(f"{p[0]:.8g} {p[1]:.8g} {p[2]:.8g}\n")
        for f in faces:
            fh.write(f"3 {f[0]} {f[1]} {f[2]}\n")


def read_off(path):
    """Read an OFF file; returns (vertices, faces).

    Handles the common ModelNet quirk where the header counts share the
    first line with the "OFF" keyword.
    """
    with open(path) as fh:
        tokens = fh.read().split()
    if not tokens or not tokens[0].startswith("OFF"):
        raise ValueError("not an OFF file")
    if tokens[0] == "OFF":
        counts_at = 1
    else:  # "OFF123 45 0" malformed-header variant
        tokens[0] = tokens[0][3:]
        counts_at = 0
    n_vertices = int(tokens[counts_at])
    n_faces = int(tokens[counts_at + 1])
    cursor = counts_at + 3
    vertices = np.array(
        tokens[cursor:cursor + 3 * n_vertices], dtype=np.float64
    ).reshape(n_vertices, 3)
    cursor += 3 * n_vertices
    faces = []
    for _ in range(n_faces):
        arity = int(tokens[cursor])
        faces.append([int(t) for t in tokens[cursor + 1:cursor + 1 + arity]])
        cursor += 1 + arity
    faces = np.array(faces, dtype=np.int64) if faces else \
        np.zeros((0, 3), dtype=np.int64)
    return vertices, faces


def write_ply(path, points, extra_properties=()):
    """Write an ascii PLY file.

    ``extra_properties`` names float columns beyond x/y/z, e.g.
    ("intensity",) for a 4-column array.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] < 3:
        raise ValueError("points must be (N, >=3)")
    if points.shape[1] != 3 + len(extra_properties):
        raise ValueError("column count does not match extra_properties")
    with open(path, "w") as fh:
        fh.write("ply\nformat ascii 1.0\n")
        fh.write(f"element vertex {len(points)}\n")
        for name in ("x", "y", "z") + tuple(extra_properties):
            fh.write(f"property float {name}\n")
        fh.write("end_header\n")
        for row in points:
            fh.write(" ".join(f"{v:.8g}" for v in row) + "\n")


def read_ply(path):
    """Read an ascii PLY file; returns (points, property_names)."""
    with open(path) as fh:
        line = fh.readline().strip()
        if line != "ply":
            raise ValueError("not a PLY file")
        n_vertices = 0
        properties = []
        in_vertex = False
        for line in fh:
            line = line.strip()
            if line.startswith("format"):
                if "ascii" not in line:
                    raise ValueError("only ascii PLY is supported")
            elif line.startswith("element"):
                _, name, count = line.split()
                in_vertex = name == "vertex"
                if in_vertex:
                    n_vertices = int(count)
            elif line.startswith("property") and in_vertex:
                properties.append(line.split()[-1])
            elif line == "end_header":
                break
        rows = []
        for _ in range(n_vertices):
            rows.append([float(t) for t in fh.readline().split()])
    return np.array(rows, dtype=np.float64), tuple(properties)


_READERS = {"xyz": read_xyz, "txt": read_xyz}
_WRITERS = {"xyz": write_xyz, "txt": write_xyz}


def load_points(path):
    """Dispatch on extension; returns an (N, >=3) array."""
    suffix = str(path).rsplit(".", 1)[-1].lower()
    if suffix == "off":
        return read_off(path)[0]
    if suffix == "ply":
        return read_ply(path)[0]
    if suffix in _READERS:
        return _READERS[suffix](path)
    raise ValueError(f"unsupported point cloud format: .{suffix}")


def save_points(path, points):
    """Dispatch on extension."""
    suffix = str(path).rsplit(".", 1)[-1].lower()
    if suffix == "off":
        write_off(path, np.asarray(points)[:, :3])
    elif suffix == "ply":
        pts = np.asarray(points)
        extras = tuple(f"f{i}" for i in range(pts.shape[1] - 3))
        write_ply(path, pts, extra_properties=extras)
    elif suffix in _WRITERS:
        _WRITERS[suffix](path, points)
    else:
        raise ValueError(f"unsupported point cloud format: .{suffix}")
