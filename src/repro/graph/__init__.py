"""Operator-graph IR: one program, many consumers.

The paper's delayed aggregation is a *program transform* — reorder the
N/A/F operator stream and both the software speedup and the hardware
co-design follow.  This package encodes that transform once: a module
builds its operator graph in ``original`` form
(:func:`~repro.graph.build.build_module_graph`), the ``delayed`` and
``limited`` strategies are graph-rewrite passes
(:mod:`~repro.graph.passes`), and the rewritten graph feeds every
consumer — eager and batched executors
(:mod:`~repro.graph.executors`), the profiling trace lowering
(:mod:`~repro.graph.lower`), the engine's execution plans
(:mod:`~repro.graph.plan`), and the N/F-overlap schedule lowering
(:mod:`~repro.graph.schedule`) the async scheduler executes.
"""

from .build import build_module_graph, search_signature
from .executors import BatchedExecutor, EagerExecutor, ExecutionResult, OpRecorder
from .ir import KINDS, Frontier, Graph, Node, format_graph, resolve_dim, shape_env
from .lower import lower_graph, lower_module_trace, lower_network_trace
from .network import (
    NetworkBatchedExecutor,
    NetworkEagerExecutor,
    NetworkGraph,
    NetworkGraphBuilder,
    NetworkOutput,
    NetworkRegion,
    build_network_graph,
)
from .passes import (
    FUSION_PASSES,
    PIPELINES,
    apply_fusion,
    dead_code_elimination,
    delay_aggregation,
    fuse_aggregation,
    fuse_epilogue,
    fuse_gather,
    fusion_report,
    limit_delay,
    module_graph,
    normalize_fusion,
    run_pipeline,
)
from .plan import (
    ModulePlan,
    NetworkPlan,
    ValueLiveness,
    compile_network_plan,
    value_liveness,
)
from .schedule import GraphSchedule, ScheduledNode, node_lane, schedule_graph

__all__ = [
    "FUSION_PASSES",
    "KINDS",
    "Frontier",
    "Graph",
    "GraphSchedule",
    "Node",
    "PIPELINES",
    "ScheduledNode",
    "BatchedExecutor",
    "EagerExecutor",
    "ExecutionResult",
    "ModulePlan",
    "NetworkBatchedExecutor",
    "NetworkEagerExecutor",
    "NetworkGraph",
    "NetworkGraphBuilder",
    "NetworkOutput",
    "NetworkPlan",
    "NetworkRegion",
    "OpRecorder",
    "ValueLiveness",
    "apply_fusion",
    "build_module_graph",
    "build_network_graph",
    "compile_network_plan",
    "dead_code_elimination",
    "delay_aggregation",
    "format_graph",
    "fuse_aggregation",
    "fuse_epilogue",
    "fuse_gather",
    "fusion_report",
    "limit_delay",
    "normalize_fusion",
    "lower_graph",
    "lower_module_trace",
    "lower_network_trace",
    "module_graph",
    "node_lane",
    "resolve_dim",
    "run_pipeline",
    "schedule_graph",
    "search_signature",
    "shape_env",
    "value_liveness",
]
