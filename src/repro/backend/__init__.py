"""Multi-backend inference runtime.

The executors in :mod:`repro.graph` interpret network graphs through
the autograd :class:`~repro.neural.Tensor` — correct, and the training
substrate needs it, but pure inference pays graph-construction
closures and float64 copies it never uses.  This package is the
runtime layer underneath: an :class:`ArrayBackend` protocol
(:mod:`repro.backend.array`), a pre-packed parameter exporter
(:mod:`repro.backend.params`), and a whole-network kernel compiler
(:mod:`repro.backend.runtime`) that lowers a
:class:`~repro.graph.network.NetworkGraph` to a flat list of
autograd-free ndarray kernels.

Two backends ship: ``float64`` (bit-exact against the graph executors)
and ``float32`` (the BLAS fast path).  The engine selects them through
``backend=`` on :class:`~repro.engine.BatchRunner` /
:class:`~repro.engine.AsyncRunner` (``kernel_backend=`` there), and
``repro bench`` tracks both in its ``backend`` row.
"""

from .aot import (
    ProgramCache,
    SharedTable,
    attach_table,
    network_fingerprint,
    network_skeleton,
    share_table,
)
from .array import ArrayBackend, NumpyBackend, get_backend
from .memplan import ArenaPlan, GraphLiveness, plan_arena, validate_plan
from .params import (
    ParameterTable,
    export_segment,
    export_stack,
    segment_layers,
)
from .runtime import KernelProgram, NetworkKernelExecutor, compile_kernel_program

__all__ = [
    "ArenaPlan",
    "ArrayBackend",
    "GraphLiveness",
    "KernelProgram",
    "NetworkKernelExecutor",
    "NumpyBackend",
    "ParameterTable",
    "ProgramCache",
    "SharedTable",
    "attach_table",
    "compile_kernel_program",
    "export_segment",
    "export_stack",
    "get_backend",
    "network_fingerprint",
    "network_skeleton",
    "plan_arena",
    "segment_layers",
    "share_table",
    "validate_plan",
]
