"""Regenerate the paper's analytic evaluation in one run.

Prints the full characterization + SoC report (Figs 4, 5, 9, 10, 18-20
in table form), a roofline summary showing why delayed-aggregation
changes the bound of feature computation, and an execution timeline of
Mesorasi-HW showing the N/F overlap.

Run:  python examples/reproduce_all.py
"""

from repro.hw import SoC
from repro.hw.timeline import build_timeline, render_gantt
from repro.networks import build_network
from repro.profiling import full_report
from repro.profiling.roofline import TX2_ROOF, analyze_trace

print(full_report())

# -- Roofline: where each algorithm sits --------------------------------------

net = build_network("PointNet++ (s)")
print("\nRoofline (TX2 GPU, fraction of FLOPs by bound):")
for strategy in ("original", "delayed"):
    _, summary = analyze_trace(net.trace(strategy), TX2_ROOF)
    print(f"  {strategy:9s}: compute-bound {summary['compute'] * 100:.0f}%, "
          f"memory-bound {summary['memory'] * 100:.0f}%")

# -- Timeline: the Fig 8 overlap on real module schedules ----------------------

soc = SoC()
for cfg in ("baseline", "mesorasi_hw"):
    tl = build_timeline(soc, net, cfg)
    print(f"\n{cfg} schedule ({tl.makespan * 1e3:.2f} ms makespan, "
          f"GPU:N x NPU:F overlap "
          f"{tl.overlap('GPU:N', 'NPU:F') * 1e3:.2f} ms):")
    print(render_gantt(tl))
