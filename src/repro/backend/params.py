"""Pre-packed parameter tables for the kernel runtime.

The autograd executors walk live :class:`~repro.neural.Module` objects
on every node dispatch; the kernel runtime instead exports each
network's weights **once per backend** into flat, backend-dtype ops
lists.  An exported *stack* is a list of per-Linear *segments*; each
segment is a tuple of primitive ops

``("linear", W, b)`` — GEMM plus optional bias (``b`` may be ``None``),
``("bias", b)`` — bias add alone (the limited-variant epilogue re-adds
the bias its hoisted product dropped),
``("bn", mean, inv, gamma, beta)`` — inference-mode batch norm with the
inverse std precomputed exactly as the eval forward computes it,
``("relu",)`` — the activation.

Export is **inference-only**: a training-mode BatchNorm (whose forward
uses batch statistics and mutates running stats) or an active Dropout
cannot be frozen into a kernel table, so exporting one raises — call
``net.eval()`` first.  On the float64 reference backend the packed
arrays share memory with the live parameters (no copy); narrower
backends snapshot a cast copy at export time.

:class:`ParameterTable` is the whole-network form of that export: one
flat, content-hashed table holding every segment a compiled
:class:`~repro.backend.runtime.KernelProgram` will touch, keyed by the
graph location that uses it.  Tables de-duplicate through a global
registry — two backends with the same dtype (or the single- and
batched-arity programs of one executor) resolve to the *same* table
object instead of snapshotting their own copies — and they serialize:
:meth:`ParameterTable.pack` flattens the table into a JSON manifest
plus one aligned binary blob, and :meth:`ParameterTable.from_buffer`
rebuilds it **zero-copy** over any buffer exposing the blob (an
``mmap`` of the program cache, a ``multiprocessing.shared_memory``
segment a pool worker attached).  That pair is what makes compiled
programs AOT-cacheable and lets K workers share one copy of the
weights (:mod:`repro.backend.aot`).
"""

from __future__ import annotations

import hashlib
import threading
import weakref

import numpy as np

from ..neural.layers import BatchNorm, Dropout, Linear, ReLU

__all__ = [
    "ParameterTable",
    "export_segment",
    "export_stack",
    "segment_layers",
]


def segment_layers(layers):
    """Split a layer list into per-Linear segments.

    Segment ``i`` starts at the i-th Linear and carries its
    BatchNorm/ReLU/Dropout tail — the same split the graph executors
    use, so segment ``i`` is what a graph ``matmul`` node ``layer=i``
    executes.
    """
    layers = list(layers)
    starts = [i for i, layer in enumerate(layers) if isinstance(layer, Linear)]
    if not starts:
        raise TypeError("cannot export a stack with no Linear layers")
    bounds = starts + [len(layers)]
    return [layers[a:b] for a, b in zip(starts, bounds[1:])]


def _export_array(array, backend):
    return np.ascontiguousarray(
        np.asarray(array).astype(backend.dtype, copy=False)
    )


def _tail_ops(layers, backend):
    """Pack a segment's post-Linear tail (BatchNorm / ReLU / Dropout)."""
    ops = []
    for layer in layers:
        if isinstance(layer, ReLU):
            ops.append(("relu",))
        elif isinstance(layer, BatchNorm):
            if layer.training:
                raise ValueError(
                    "kernel backends compile inference programs; a "
                    "training-mode BatchNorm uses batch statistics — "
                    "call .eval() on the network before compiling"
                )
            # Precompute the inverse std exactly as the eval forward
            # does, so the float64 reference stays bit-exact.
            inv = 1.0 / np.sqrt(layer.running_var + layer.eps)
            ops.append((
                "bn",
                _export_array(layer.running_mean, backend),
                _export_array(inv, backend),
                _export_array(layer.gamma.data, backend),
                _export_array(layer.beta.data, backend),
            ))
        elif isinstance(layer, Dropout):
            if layer.training and layer.p > 0.0:
                raise ValueError(
                    "kernel backends compile inference programs; an "
                    "active Dropout cannot be frozen — call .eval() on "
                    "the network before compiling"
                )
            # Inactive dropout is the identity.
        else:
            raise TypeError(
                f"cannot export layer {type(layer).__name__} to a "
                "kernel backend"
            )
    return ops


def export_segment(layers, backend, weight_only=False, epilogue=False,
                   site=None, packer=None):
    """Pack one per-Linear segment into an ops tuple.

    ``weight_only`` exports just the GEMM (the limited variant's
    hoisted product); ``epilogue`` exports the complementary bias +
    activation tail the epilogue node replays after aggregation.
    ``packer`` (a backend's ``segment_packer`` closure) replaces the
    plain ``("linear", W, b)`` head with a backend-specific op —
    quantized backends emit ``("qlinear", ...)`` here — and receives
    ``site``, the graph location whose calibrated activation scale the
    segment consumes.
    """
    linear, tail = layers[0], layers[1:]
    if not isinstance(linear, Linear):
        raise TypeError("segment must start with a Linear layer")
    if epilogue:
        bias = None if linear.bias is None \
            else _export_array(linear.bias.data, backend)
        ops = [] if bias is None else [("bias", bias)]
        return tuple(ops + _tail_ops(tail, backend))
    if packer is not None:
        head = packer(linear, site, weight_only)
    else:
        weight = _export_array(linear.weight.data, backend)
        bias = None if weight_only or linear.bias is None \
            else _export_array(linear.bias.data, backend)
        head = ("linear", weight, bias)
    if weight_only:
        return (head,)
    return tuple([head] + _tail_ops(tail, backend))


def export_stack(layers, backend, site=None, packer=None):
    """Pack a whole Linear/.../Linear stack: one ops tuple per segment.

    ``site`` is the stack's base graph location; segment ``i`` packs
    under ``site + (i,)``, matching the parameter-table keys.
    """
    return tuple(
        export_segment(segment, backend,
                       site=None if site is None else tuple(site) + (si,),
                       packer=packer)
        for si, segment in enumerate(segment_layers(layers))
    )


#: Blob offsets round up to one cache line — every zero-copy view is
#: aligned for any backend dtype.
_BLOB_ALIGNMENT = 64


def _check_not_stripped(obj):
    if getattr(obj, "_parameters_stripped", False):
        raise RuntimeError(
            "network parameters were stripped for zero-copy transport; "
            "attach a packed ParameterTable (program cache / shared "
            "memory) instead of re-exporting weights"
        )


def _ref_layers(obj):
    """The exportable layer list behind a graph ref (head / decoder)."""
    return obj.export_layers() if hasattr(obj, "export_layers") \
        else list(obj.net.layers)


class ParameterTable:
    """Every packed segment one compiled program touches, in one table.

    Entries are keyed by graph location —
    ``("module", module_index, layer, variant)`` for the shared-MLP
    segments (``variant`` is ``"full"``, ``"weight_only"`` or
    ``"epilogue"``, mirroring the matmul/epilogue node attributes) and
    ``("ref", ref_index, stage)`` for head / decoder stacks — so the
    kernel compiler looks ops up instead of exporting them, and a
    table built on the parent process answers every lookup a worker's
    program will make.

    Tables are content-addressed: :attr:`content_hash` digests the
    dtype, keys, op kinds and raw bytes, and :meth:`for_graph`
    canonicalizes through a global weak registry so equal tables are
    one object in memory.
    """

    _registry = weakref.WeakValueDictionary()
    _registry_lock = threading.Lock()

    def __init__(self, backend_name, dtype, entries, content_hash=None):
        self.backend_name = str(backend_name)
        self.dtype = np.dtype(dtype)
        self.entries = dict(entries)
        self.content_hash = content_hash or self._digest()
        # Zero-copy tables keep their backing buffer alive through this
        # handle (shared-memory segment, mmap); plain exports leave it None.
        self._backing = None

    # -- construction --------------------------------------------------------

    @classmethod
    def for_graph(cls, ngraph, backend, dedupe=True, network=None):
        """Export the table of one whole-network graph under ``backend``.

        With ``dedupe`` (the default) the result is canonicalized
        through the content-hash registry: a second export with
        identical bytes — the other arity of the same program, another
        executor over the same network, any backend sharing the dtype —
        returns the existing table object instead of new copies.

        ``network`` is the live network the graph was built from;
        backends that pack segments specially (the quantized backend's
        ``segment_packer`` hook) may need it to calibrate activation
        scales before exporting.
        """
        packer = None
        make_packer = getattr(backend, "segment_packer", None)
        if make_packer is not None:
            packer = make_packer(ngraph, network)
        entries = {}
        segments = {}
        graph = ngraph.graph
        for node in graph.nodes:
            kind = node.kind
            if kind in ("matmul", "epilogue"):
                midx = node.attrs["module"]
                module = ngraph.refs[midx]
                _check_not_stripped(module)
                if midx not in segments:
                    segments[midx] = segment_layers(module.mlp.export_layers())
                layer = node.attrs["layer"]
                if kind == "epilogue":
                    variant = "epilogue"
                elif node.attrs.get("weight_only"):
                    variant = "weight_only"
                else:
                    variant = "full"
                key = ("module", midx, layer, variant)
                if key not in entries:
                    entries[key] = export_segment(
                        segments[midx][layer], backend,
                        weight_only=variant == "weight_only",
                        epilogue=variant == "epilogue",
                        site=key, packer=packer,
                    )
            elif kind in ("head", "propagate"):
                ref = node.attrs["ref"]
                if ("ref", ref, 0) in entries:
                    continue
                obj = ngraph.refs[ref]
                _check_not_stripped(obj)
                for si, ops in enumerate(export_stack(_ref_layers(obj),
                                                      backend,
                                                      site=("ref", ref),
                                                      packer=packer)):
                    entries[("ref", ref, si)] = ops
        table = cls(backend.name, backend.dtype, entries)
        return table._canonical() if dedupe else table

    def _canonical(self):
        with ParameterTable._registry_lock:
            existing = ParameterTable._registry.get(self.content_hash)
            if existing is not None:
                return existing
            ParameterTable._registry[self.content_hash] = self
            return self

    # -- lookup --------------------------------------------------------------

    def module_segment(self, midx, layer, weight_only=False, epilogue=False):
        """Ops of one shared-MLP segment, by graph location."""
        variant = "epilogue" if epilogue else \
            "weight_only" if weight_only else "full"
        return self.entries[("module", midx, layer, variant)]

    def stages(self, ref):
        """The packed per-segment stack of graph ref ``ref``."""
        out = []
        while ("ref", ref, len(out)) in self.entries:
            out.append(self.entries[("ref", ref, len(out))])
        if not out:
            raise KeyError(f"parameter table holds no stack for ref {ref}")
        return tuple(out)

    def _arrays(self):
        for key in sorted(self.entries, key=repr):
            for op in self.entries[key]:
                for part in op[1:]:
                    if part is not None:
                        yield part

    @property
    def nbytes(self):
        """Total packed parameter bytes (shared arrays counted once)."""
        seen, total = set(), 0
        for array in self._arrays():
            if id(array) not in seen:
                seen.add(id(array))
                total += array.nbytes
        return total

    # -- content addressing --------------------------------------------------

    def _digest(self):
        digest = hashlib.sha256()
        digest.update(str(self.dtype).encode())
        for key in sorted(self.entries, key=repr):
            digest.update(repr(key).encode())
            for op in self.entries[key]:
                digest.update(op[0].encode())
                for part in op[1:]:
                    if part is None:
                        digest.update(b"\x00")
                    else:
                        digest.update(str(part.shape).encode())
                        digest.update(np.ascontiguousarray(part).data)
        return digest.hexdigest()

    # -- serialization -------------------------------------------------------

    def pack(self):
        """Flatten to ``(manifest, blob)``: JSON metadata + one buffer.

        Arrays land in the blob at cache-line-aligned offsets, each
        recorded once (entries sharing an array share the slot), so
        :meth:`from_buffer` can rebuild every op as a zero-copy view.
        """
        arrays, index, specs = [], {}, []
        offset = 0
        for part in self._arrays():
            if id(part) in index:
                continue
            index[id(part)] = len(arrays)
            data = np.ascontiguousarray(part)
            specs.append({
                "offset": offset,
                "shape": list(part.shape),
                "dtype": str(part.dtype),
            })
            arrays.append(data)
            offset += -(-data.nbytes // _BLOB_ALIGNMENT) * _BLOB_ALIGNMENT
        blob = bytearray(offset)
        for spec, data in zip(specs, arrays):
            start = spec["offset"]
            blob[start:start + data.nbytes] = data.tobytes()
        entries = []
        for key in sorted(self.entries, key=repr):
            ops = []
            for op in self.entries[key]:
                refs = [None if part is None else index[id(part)]
                        for part in op[1:]]
                ops.append([op[0]] + refs)
            entries.append({"key": list(key), "ops": ops})
        manifest = {
            "format": 1,
            "kind": "parameter-table",
            "backend": self.backend_name,
            "dtype": str(self.dtype),
            "content_hash": self.content_hash,
            "total_bytes": len(blob),
            "arrays": specs,
            "entries": entries,
        }
        return manifest, bytes(blob)

    @classmethod
    def from_buffer(cls, manifest, buffer, backing=None, dedupe=True):
        """Rebuild a table as zero-copy views over ``buffer``.

        ``buffer`` is anything the :func:`numpy.frombuffer` protocol
        accepts — the ``.buf`` of an attached shared-memory segment, a
        read-only ``mmap`` of the on-disk blob.  ``backing`` (kept on
        the table) pins the owner of that memory for the table's
        lifetime.  No bytes are copied and nothing is re-hashed: the
        manifest's recorded content hash is trusted (it was computed
        when the blob was written; `verify_buffer` re-checks it when
        integrity matters more than load time).
        """
        if manifest.get("kind") != "parameter-table":
            raise ValueError("manifest does not describe a parameter table")
        views = []
        for spec in manifest["arrays"]:
            dtype = np.dtype(spec["dtype"])
            count = int(np.prod(spec["shape"], dtype=np.int64)) \
                if spec["shape"] else 1
            view = np.frombuffer(buffer, dtype=dtype, count=count,
                                 offset=spec["offset"])
            views.append(view.reshape(spec["shape"]))
        entries = {}
        for entry in manifest["entries"]:
            key = tuple(entry["key"])
            ops = []
            for op in entry["ops"]:
                ops.append(tuple([op[0]] + [
                    None if ref is None else views[ref] for ref in op[1:]
                ]))
            entries[key] = tuple(ops)
        table = cls(manifest["backend"], manifest["dtype"], entries,
                    content_hash=manifest["content_hash"])
        table._backing = backing
        return table._canonical() if dedupe else table

    def verify_buffer(self):
        """Recompute the content hash over the live arrays; True if intact."""
        return self._digest() == self.content_hash
