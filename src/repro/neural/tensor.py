"""Reverse-mode automatic differentiation over numpy arrays.

This is the DNN substrate the paper's networks are built on.  The paper
used TensorFlow on a Jetson TX2; we need training (Fig 16 retrains every
network with delayed-aggregation) but have no deep-learning framework
offline, so we implement a small, well-tested autograd engine.

Only the operations required by point cloud networks are provided:
matmul, elementwise arithmetic with broadcasting, ReLU, max-reduction
(the paper's neighborhood reduction), gather (the aggregation step),
concatenation, and the usual shape plumbing.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["Tensor", "concat", "stack", "no_grad", "is_grad_enabled"]

# Grad mode is per-thread: the serving/scheduler layers enter no_grad()
# concurrently from dispatcher and worker threads, and a process-global
# flag with save/restore semantics races under interleaved enter/exit
# (thread A's restore can clobber thread B's state — or leak inference
# mode into the main thread permanently).  A thread starts with grads
# enabled; every pooled inference task enters no_grad() itself.
_GRAD_STATE = threading.local()


class no_grad:
    """Context manager disabling graph construction (inference mode).

    Scoped to the current thread — entering it on a dispatcher thread
    does not flip grad mode for anyone else, so worker tasks must enter
    their own (the engine's pooled tasks all do).
    """

    def __enter__(self):
        self._prev = is_grad_enabled()
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, *exc):
        _GRAD_STATE.enabled = self._prev
        return False


def is_grad_enabled():
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad, shape):
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array plus the backward graph that produced it."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # beat numpy operator dispatch

    def __init__(self, data, requires_grad=False):
        if isinstance(data, Tensor):
            data = data.data
        if not is_grad_enabled() and isinstance(data, np.ndarray) \
                and data.dtype.kind == "f":
            # Inference fast path: respect the array's floating dtype.
            # Training always promotes to float64 (gradient accuracy),
            # but under no_grad() a float32 array — e.g. one produced by
            # the float32 kernel backend — must survive the neural layer
            # without a silent upcast copy.
            self.data = data
        else:
            self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad = None
        self._backward = None
        self._parents = ()

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def _wrap(other):
        return other if isinstance(other, Tensor) else Tensor(other)

    @classmethod
    def _from_op(cls, data, parents, backward):
        out = cls(data)
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # -- basic properties ------------------------------------------------------

    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    @property
    def T(self):
        return self.transpose()

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad})"

    def numpy(self):
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self):
        return float(self.data)

    def detach(self):
        return Tensor(self.data)

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other):
        other = self._wrap(other)
        out_data = self.data + other.data

        def backward(grad):
            return (_unbroadcast(grad, self.shape), _unbroadcast(grad, other.shape))

        return Tensor._from_op(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            return (-grad,)

        return Tensor._from_op(-self.data, (self,), backward)

    def __sub__(self, other):
        other = self._wrap(other)
        out_data = self.data - other.data

        def backward(grad):
            return (_unbroadcast(grad, self.shape), _unbroadcast(-grad, other.shape))

        return Tensor._from_op(out_data, (self, other), backward)

    def __rsub__(self, other):
        return self._wrap(other) - self

    def __mul__(self, other):
        other = self._wrap(other)
        out_data = self.data * other.data

        def backward(grad):
            return (
                _unbroadcast(grad * other.data, self.shape),
                _unbroadcast(grad * self.data, other.shape),
            )

        return Tensor._from_op(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._wrap(other)
        out_data = self.data / other.data

        def backward(grad):
            return (
                _unbroadcast(grad / other.data, self.shape),
                _unbroadcast(-grad * self.data / (other.data ** 2), other.shape),
            )

        return Tensor._from_op(out_data, (self, other), backward)

    def __rtruediv__(self, other):
        return self._wrap(other) / self

    def __pow__(self, exponent):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._from_op(out_data, (self,), backward)

    def __matmul__(self, other):
        other = self._wrap(other)
        out_data = self.data @ other.data

        def backward(grad):
            a, b = self.data, other.data
            if a.ndim == 1:
                a2 = a[None, :]
                grad2 = grad[None, :] if grad.ndim == 1 else grad
            else:
                a2, grad2 = a, grad
            grad_a = grad2 @ np.swapaxes(b, -1, -2) if b.ndim > 1 else np.outer(grad2, b)
            grad_b = np.swapaxes(a2, -1, -2) @ grad2 if a.ndim > 1 else np.outer(a, grad2)
            # Collapse batch dims broadcast during matmul.
            grad_a = _unbroadcast(np.asarray(grad_a), self.shape)
            grad_b = _unbroadcast(np.asarray(grad_b), other.shape)
            return (grad_a, grad_b)

        return Tensor._from_op(out_data, (self, other), backward)

    # -- nonlinearities ------------------------------------------------------

    def relu(self):
        mask = self.data > 0

        def backward(grad):
            return (grad * mask,)

        return Tensor._from_op(self.data * mask, (self,), backward)

    def exp(self):
        out_data = np.exp(self.data)

        def backward(grad):
            return (grad * out_data,)

        return Tensor._from_op(out_data, (self,), backward)

    def log(self):
        def backward(grad):
            return (grad / self.data,)

        return Tensor._from_op(np.log(self.data), (self,), backward)

    def sqrt(self):
        out_data = np.sqrt(self.data)

        def backward(grad):
            return (grad * 0.5 / out_data,)

        return Tensor._from_op(out_data, (self,), backward)

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(grad):
            return (grad * (1.0 - out_data ** 2),)

        return Tensor._from_op(out_data, (self,), backward)

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            return (grad * out_data * (1.0 - out_data),)

        return Tensor._from_op(out_data, (self,), backward)

    # -- reductions ------------------------------------------------------------

    def sum(self, axis=None, keepdims=False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, self.shape).copy(),)

        return Tensor._from_op(out_data, (self,), backward)

    def mean(self, axis=None, keepdims=False):
        count = self.size if axis is None else self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis, keepdims=False):
        """Max-reduction along ``axis`` — the paper's neighborhood reduction.

        The gradient flows only to the arg-max element of each slice,
        matching the behaviour of max-pooling in the original networks.
        """
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if not (is_grad_enabled() and self.requires_grad):
            # Inference fast path: the argmax bookkeeping below exists
            # only for the backward pass and costs as much as the max.
            return Tensor._from_op(out_data, (self,), None)
        argmax = np.expand_dims(self.data.argmax(axis=axis), axis)

        def backward(grad):
            g = np.asarray(grad)
            if not keepdims:
                g = np.expand_dims(g, axis)
            full = np.zeros_like(self.data)
            np.put_along_axis(full, argmax, g, axis)
            return (full,)

        return Tensor._from_op(out_data, (self,), backward)

    # -- shape plumbing --------------------------------------------------------

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad):
            return (grad.reshape(self.shape),)

        return Tensor._from_op(out_data, (self,), backward)

    def transpose(self, axes=None):
        out_data = self.data.transpose(axes)
        if axes is None:
            inverse = None
        else:
            inverse = np.argsort(axes)

        def backward(grad):
            return (grad.transpose(inverse),)

        return Tensor._from_op(out_data, (self,), backward)

    def gather(self, indices):
        """Select rows along axis 0: the *aggregation* gather.

        ``indices`` may be any integer array; the output has shape
        ``indices.shape + self.shape[1:]``.  Gradients scatter-add back
        into the source rows (a point feature used by many neighborhoods
        accumulates gradient from each).
        """
        idx = np.asarray(indices)
        out_data = self.data[idx]

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, idx.reshape(-1), grad.reshape(-1, *self.shape[1:]))
            return (full,)

        return Tensor._from_op(out_data, (self,), backward)

    def __getitem__(self, key):
        out_data = self.data[key]

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, key, grad)
            return (full,)

        return Tensor._from_op(out_data, (self,), backward)

    # -- autograd driver ---------------------------------------------------

    def backward(self, grad=None):
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar output")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)

        order = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None or node._backward is None:
                if node_grad is not None and node.requires_grad and node._backward is None:
                    node.grad = node_grad if node.grad is None else node.grad + node_grad
                continue
            if node.requires_grad and not node._parents:
                node.grad = node_grad if node.grad is None else node.grad + node_grad
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + pgrad
                else:
                    grads[id(parent)] = pgrad


def concat(tensors, axis=0):
    """Concatenate tensors along ``axis`` (DGCNN's ``+`` in Fig 1b)."""
    tensors = [Tensor._wrap(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        slicer = [slice(None)] * grad.ndim
        pieces = []
        for start, stop in zip(offsets[:-1], offsets[1:]):
            slicer[axis] = slice(start, stop)
            pieces.append(grad[tuple(slicer)])
        return tuple(pieces)

    return Tensor._from_op(out_data, tensors, backward)


def stack(tensors, axis=0):
    """Stack tensors along a new axis."""
    tensors = [Tensor._wrap(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        return tuple(np.take(grad, i, axis=axis) for i in range(len(tensors)))

    return Tensor._from_op(out_data, tensors, backward)
