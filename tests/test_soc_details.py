"""Detailed accounting tests for the SoC composition layer."""

import numpy as np
import pytest

from repro.core import ModuleSpec
from repro.hw import (
    CONFIGS,
    MobileGPU,
    NeighborSearchEngine,
    SoC,
    SoCConfig,
    SystolicNPU,
    synthetic_nit,
)
from repro.networks import build_network
from repro.profiling.trace import MatMulOp, NeighborSearchOp, Trace


@pytest.fixture(scope="module")
def net():
    return build_network("PointNet++ (c)")


class TestPhaseAccounting:
    def test_energy_split_covers_all_phases(self, net):
        soc = SoC()
        r = soc.simulate(net, "mesorasi_hw")
        assert all(r.phase_energy[p] >= 0 for p in "NAFO")
        assert r.energy >= sum(r.phase_energy.values())  # + DRAM term

    def test_latency_at_most_sum_of_phases(self, net):
        soc = SoC()
        r = soc.simulate(net, "mesorasi_hw")
        assert r.latency <= sum(r.phase_times.values()) + 1e-12

    def test_serial_config_latency_is_sum(self, net):
        soc = SoC()
        r = soc.simulate(net, "baseline")
        assert r.latency == pytest.approx(sum(r.phase_times.values()))

    def test_overlap_saves_latency(self, net):
        soc = SoC()
        overlap = soc.simulate(net, "mesorasi_sw")
        serial_cfg = SoCConfig("serial", strategy="delayed", use_npu=True,
                               overlap=False)
        serial = soc.simulate(net, serial_cfg)
        assert overlap.latency <= serial.latency
        # Phase totals are identical; only the composition differs.
        for p in "NAFO":
            assert overlap.phase_times[p] == pytest.approx(
                serial.phase_times[p]
            )


class TestEngineSubstitution:
    def test_custom_gpu(self, net):
        fast = SoC(gpu=MobileGPU(matmul_macs_per_s=460e9))
        slow = SoC(gpu=MobileGPU(matmul_macs_per_s=4.6e9))
        assert fast.simulate(net, "gpu").latency < \
            slow.simulate(net, "gpu").latency

    def test_custom_nse_speedup(self, net):
        weak = SoC(nse=NeighborSearchEngine(speedup_over_gpu=2.0))
        strong = SoC(nse=NeighborSearchEngine(speedup_over_gpu=600.0))
        w = weak.simulate(net, "baseline_nse")
        s = strong.simulate(net, "baseline_nse")
        assert s.phase_times["N"] < w.phase_times["N"]

    def test_custom_npu_array(self, net):
        small = SoC(npu=SystolicNPU(array_dim=4))
        large = SoC(npu=SystolicNPU(array_dim=64))
        assert large.simulate(net, "baseline").phase_times["F"] < \
            small.simulate(net, "baseline").phase_times["F"]


class TestSyntheticNIT:
    def test_shape_follows_spec(self):
        spec = ModuleSpec("m", 256, 64, 12, (3, 8))
        nit = synthetic_nit(spec)
        assert nit.shape == (64, 12)
        assert nit.max() < 256

    def test_cached(self):
        spec = ModuleSpec("m", 256, 64, 12, (3, 8))
        assert synthetic_nit(spec) is synthetic_nit(spec)

    def test_full_coverage_when_no_downsampling(self):
        spec = ModuleSpec("m", 64, 64, 4, (3, 8))
        nit = synthetic_nit(spec)
        assert nit.shape == (64, 4)
        # Every centroid's nearest neighbor set includes itself.
        assert (nit == np.arange(64)[:, None]).any(axis=1).all()


class TestGPUOverlapBranches:
    def _trace(self, n_time_heavy):
        t = Trace()
        # One parallelizable search and one parallelizable matmul.
        t.add(NeighborSearchOp("N", "m", parallelizable=True,
                               n_queries=4096 if n_time_heavy else 16,
                               n_points=4096, k=8, dim=3))
        t.add(MatMulOp("F", "m", parallelizable=True,
                       rows=16 if n_time_heavy else 200000,
                       in_dim=64, out_dim=64))
        return t

    def test_n_heavy_hides_f(self):
        gpu = MobileGPU(concurrent_kernels=True)
        r = gpu.run(self._trace(n_time_heavy=True))
        assert r.phase_times["N"] > 0
        assert r.phase_times["F"] == 0.0

    def test_f_heavy_hides_n(self):
        gpu = MobileGPU(concurrent_kernels=True)
        r = gpu.run(self._trace(n_time_heavy=False))
        assert r.phase_times["F"] > 0
        assert r.phase_times["N"] == 0.0

    def test_energy_counts_both_branches(self):
        serial = MobileGPU(concurrent_kernels=False)
        overlap = MobileGPU(concurrent_kernels=True)
        t = self._trace(n_time_heavy=True)
        # Overlap hides latency but not energy.
        assert overlap.run(t).energy == pytest.approx(serial.run(t).energy)


class TestConfigRegistry:
    def test_all_configs_simulate(self, net):
        soc = SoC()
        for name in CONFIGS:
            r = soc.simulate(net, name)
            assert r.latency > 0 and r.energy > 0, name

    def test_au_only_with_use_au(self, net):
        soc = SoC()
        assert soc.simulate(net, "mesorasi_sw").au_stats == []
        assert len(soc.simulate(net, "mesorasi_hw").au_stats) > 0

    def test_nse_reduces_n_energy(self, net):
        soc = SoC()
        plain = soc.simulate(net, "baseline")
        nse = soc.simulate(net, "baseline_nse")
        assert nse.phase_energy["N"] < plain.phase_energy["N"]
