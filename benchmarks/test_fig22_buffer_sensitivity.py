"""Fig 22: AU energy vs NIT/PFT buffer sizes (PointNet++ (s)).

Paper: shrinking the buffers raises AU energy (up to 32x at 8 KB PFT /
3 KB NIT) because a smaller PFT forces more column partitions, each of
which re-reads the whole NIT; growing them trades area for a small
energy win.  The nominal 64 KB / 12 KB point balances the two.
"""

from conftest import print_table

from repro.hw import AggregationUnit, SRAM
from repro.hw.soc import synthetic_nit
from repro.networks import build_network

PFT_SIZES = (8, 16, 32, 64, 128, 256)
NIT_SIZES = (3, 6, 12, 24, 48, 96)


def _au_energy(net, pft_kb, nit_kb):
    au = AggregationUnit(
        pft_buffer=SRAM(pft_kb, banks=32, name="pft"),
        nit_buffer=SRAM(nit_kb, banks=1, name="nit"),
    )
    total = 0.0
    for module in net.encoder:
        spec = module.spec
        nit = synthetic_nit(spec)
        total += au.process(nit, spec.out_dim, spec.n_in).energy
    return total


def test_fig22_buffer_sensitivity(benchmark):
    net = build_network("PointNet++ (s)")

    def run():
        grid = {}
        for pft in PFT_SIZES:
            for nit in NIT_SIZES:
                grid[(pft, nit)] = _au_energy(net, pft, nit)
        return grid

    grid = benchmark(run)
    nominal = grid[(64, 12)]
    rows = []
    for pft in PFT_SIZES:
        rows.append(
            (f"{pft} KB",
             *(f"{grid[(pft, nit)] / nominal:.2f}" for nit in NIT_SIZES))
        )
    print_table(
        "Fig 22: AU energy normalized to the nominal design (PFT rows, "
        "NIT cols)",
        ["PFT \\ NIT"] + [f"{n} KB" for n in NIT_SIZES],
        rows,
    )
    # Smaller PFT => more partitions => more energy; same along the NIT
    # axis (more DRAM re-reads).  A ~10% tolerance allows the flat
    # saturated corner of the grid (as in the paper's 0.1/0.1 cells).
    for nit in NIT_SIZES:
        col = [grid[(pft, nit)] for pft in PFT_SIZES]
        assert all(a >= 0.8 * b for a, b in zip(col, col[1:]))
    for pft in PFT_SIZES:
        row = [grid[(pft, nit)] for nit in NIT_SIZES]
        assert all(a >= 0.8 * b for a, b in zip(row, row[1:]))
    # The extreme corner costs many times the nominal energy (paper:
    # 31.8x), and the largest buffers drop well below it (paper: 0.1x).
    assert grid[(8, 3)] / nominal > 4.0
    assert grid[(256, 96)] / nominal < 0.6
