"""Multi-backend inference runtime.

The executors in :mod:`repro.graph` interpret network graphs through
the autograd :class:`~repro.neural.Tensor` — correct, and the training
substrate needs it, but pure inference pays graph-construction
closures and float64 copies it never uses.  This package is the
runtime layer underneath: an :class:`ArrayBackend` protocol
(:mod:`repro.backend.array`), a pre-packed parameter exporter
(:mod:`repro.backend.params`), and a whole-network kernel compiler
(:mod:`repro.backend.runtime`) that lowers a
:class:`~repro.graph.network.NetworkGraph` to a flat list of
autograd-free ndarray kernels.

Three backends ship: ``float64`` (bit-exact against the graph
executors), ``float32`` (the BLAS fast path), and ``int8``
(:mod:`repro.backend.quant` — per-channel symmetric weight scales,
per-tensor activation scales calibrated against the float64 reference,
int8 GEMMs with int32 accumulation inside a float32 envelope).  The
engine selects them through ``backend=`` on
:class:`~repro.engine.BatchRunner` / :class:`~repro.engine.AsyncRunner`
(``kernel_backend=`` there), and ``repro bench`` tracks them in its
``backend`` and ``quant`` rows.
"""

from .aot import (
    ProgramCache,
    SharedTable,
    attach_table,
    network_fingerprint,
    network_skeleton,
    parameter_descriptor,
    share_table,
)
from .array import (
    ArrayBackend,
    NumpyBackend,
    get_backend,
    registered_backends,
)
from .memplan import ArenaPlan, GraphLiveness, plan_arena, validate_plan
from .params import (
    ParameterTable,
    export_segment,
    export_stack,
    segment_layers,
)
from .quant import (
    CalibrationRecorder,
    Int8Backend,
    ScaleTable,
    calibrate_scales,
)
from .runtime import KernelProgram, NetworkKernelExecutor, compile_kernel_program

__all__ = [
    "ArenaPlan",
    "ArrayBackend",
    "CalibrationRecorder",
    "GraphLiveness",
    "Int8Backend",
    "KernelProgram",
    "NetworkKernelExecutor",
    "NumpyBackend",
    "ParameterTable",
    "ProgramCache",
    "ScaleTable",
    "SharedTable",
    "attach_table",
    "calibrate_scales",
    "compile_kernel_program",
    "export_segment",
    "export_stack",
    "get_backend",
    "network_fingerprint",
    "network_skeleton",
    "parameter_descriptor",
    "plan_arena",
    "registered_backends",
    "segment_layers",
    "share_table",
    "validate_plan",
]
