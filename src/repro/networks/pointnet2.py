"""PointNet++ [43] — classification (c) and segmentation (s) variants.

The configurations follow the single-scale-grouping reference models the
paper characterizes: Fig 3 describes the first module exactly (1024 ->
512 centroids, K=32, MLP [3, 64, 64, 128]).  Both variants support a
``scale`` factor so the same architecture trains at toy scale on the
synthetic datasets.
"""

from __future__ import annotations

import numpy as np

from ..core import ModuleSpec, PointCloudModule
from .base import FCHead, FeaturePropagation, PointCloudNetwork, scale_spec

__all__ = ["PointNet2Classification", "PointNet2Segmentation"]


_CLS_SPECS = (
    ModuleSpec("sa1", n_in=1024, n_out=512, k=32, mlp_dims=(3, 64, 64, 128)),
    ModuleSpec("sa2", n_in=512, n_out=128, k=64, mlp_dims=(128, 128, 128, 256)),
    ModuleSpec("sa3", n_in=128, n_out=1, k=128, mlp_dims=(256, 256, 512, 1024)),
)

_SEG_SPECS = (
    ModuleSpec("sa1", n_in=2048, n_out=512, k=32, mlp_dims=(3, 64, 64, 128)),
    ModuleSpec("sa2", n_in=512, n_out=128, k=64, mlp_dims=(128, 128, 128, 256)),
    ModuleSpec("sa3", n_in=128, n_out=1, k=128, mlp_dims=(256, 256, 512, 1024)),
)


class PointNet2Classification(PointCloudNetwork):
    """PointNet++ (c): hierarchical set abstraction + FC classifier."""

    name = "PointNet++ (c)"
    task = "classification"
    dataset = "ModelNet40"
    year = 2017
    paper_n_points = 1024

    def __init__(self, num_classes=40, scale=1.0, dropout=0.0, rng=None):
        rng = rng or np.random.default_rng(0)
        specs = [scale_spec(s, scale) for s in _CLS_SPECS]
        modules = [PointCloudModule(s, rng=rng) for s in specs]
        super().__init__(modules, rng=rng)
        self.num_classes = num_classes
        self.head = FCHead([1024, 512, 256, num_classes], dropout=dropout, rng=rng)

    def _build_graph(self, nb):
        # sa3 reduces every cloud to one centroid, so the flat encoder
        # output is (nclouds, 1024) and the head batches for free.
        coords, feats = nb.input()
        _, feats = nb.encoder(self.encoder, coords, feats)[-1]
        nb.output(nb.head(self.head, feats, rows=1))


class PointNet2Segmentation(PointCloudNetwork):
    """PointNet++ (s): encoder + feature-propagation decoder."""

    name = "PointNet++ (s)"
    task = "segmentation"
    dataset = "ShapeNet"
    year = 2017
    paper_n_points = 2048

    def __init__(self, num_classes=50, scale=1.0, rng=None):
        rng = rng or np.random.default_rng(0)
        specs = [scale_spec(s, scale) for s in _SEG_SPECS]
        modules = [PointCloudModule(s, rng=rng) for s in specs]
        super().__init__(modules, rng=rng)
        self.num_classes = num_classes
        n = [s.n_in for s in specs]  # (2048, 512, 128) at paper scale
        # FP3 upsamples sa3 output onto sa2 centroids, etc. (skip concat).
        self.fp3 = FeaturePropagation("fp3", n[2], (1024 + 256, 256, 256), rng=rng)
        self.fp2 = FeaturePropagation("fp2", n[1], (256 + 128, 256, 128), rng=rng)
        self.fp1 = FeaturePropagation("fp1", n[0], (128 + 3, 128, 128, 128), rng=rng)
        self.head = FCHead([128, 128, num_classes], rng=rng)

    def _build_graph(self, nb):
        coords, feats = nb.input()
        levels = nb.encoder(self.encoder, coords, feats)
        (c0, f0), (c1, f1), (c2, f2), (c3, f3) = levels
        up2 = nb.propagate(self.fp3, c2, f2, c3, f3)
        up1 = nb.propagate(self.fp2, c1, f1, c2, up2)
        up0 = nb.propagate(self.fp1, c0, f0, c1, up1)
        logits = nb.head(self.head, up0, rows=self.n_points)
        nb.output(logits, per_point=True)
