"""Object classification with PointNet++ under delayed-aggregation.

Trains a scaled-down PointNet++ (c) on the synthetic ModelNet-like
dataset under both execution strategies and verifies the Fig 16 claim:
delayed-aggregation trains to the same accuracy regime as the original
algorithm.

Run:  python examples/classification_modelnet.py
"""

import numpy as np

from repro.data import SyntheticModelNet
from repro.networks import (
    build_network,
    evaluate_classifier,
    train_classifier,
)

SCALE = 0.0625     # 64-point clouds keep the example under a minute
NUM_CLASSES = 4
EPOCHS = 10

dataset = SyntheticModelNet(
    num_classes=NUM_CLASSES, n_points=256, train_per_class=8,
    test_per_class=4, seed=0, rotate=False,
)
print(f"dataset: {len(dataset.train_clouds)} train / "
      f"{len(dataset.test_clouds)} test clouds, classes: "
      f"{dataset.class_names[:NUM_CLASSES]}")

for strategy in ("original", "delayed"):
    net = build_network(
        "PointNet++ (c)", num_classes=NUM_CLASSES, scale=SCALE,
        rng=np.random.default_rng(0),
    )
    n = net.n_points
    result = train_classifier(
        net, dataset.train_clouds[:, :n], dataset.train_labels,
        epochs=EPOCHS, lr=1e-3, strategy=strategy, seed=1,
    )
    train_acc = evaluate_classifier(
        net, dataset.train_clouds[:, :n], dataset.train_labels,
        strategy=strategy,
    )
    test_acc = evaluate_classifier(
        net, dataset.test_clouds[:, :n], dataset.test_labels,
        strategy=strategy,
    )
    print(f"{strategy:9s}: loss {result.losses[0]:.2f} -> "
          f"{result.losses[-1]:.2f}, train acc {train_acc:.2f}, "
          f"test acc {test_acc:.2f}")
