"""Fig 21: sensitivity of Mesorasi-HW's gains to the systolic array size.

Paper (PointNet++ (s)): growing the array from 8x8 to 48x48 shrinks the
speedup from 2.8x to 1.2x (less feature-computation time left to save)
while the energy reduction improves slightly.
"""

from conftest import print_table

from repro.hw import SoC, SystolicNPU
from repro.networks import build_network

SIZES = (8, 16, 24, 32, 40, 48)


def test_fig21_sa_sensitivity(benchmark):
    net = build_network("PointNet++ (s)")

    def run():
        out = {}
        for dim in SIZES:
            soc = SoC(npu=SystolicNPU(array_dim=dim))
            base = soc.simulate(net, "baseline")
            hw = soc.simulate(net, "mesorasi_hw")
            out[dim] = (
                base.latency / hw.latency,
                hw.energy / base.energy,
            )
        return out

    data = benchmark(run)
    print_table(
        "Fig 21: PointNet++ (s) vs systolic array size",
        ["SA size", "Speedup", "Norm. energy"],
        [
            (f"{d}x{d}", f"{data[d][0]:.2f}", f"{data[d][1]:.2f}")
            for d in SIZES
        ],
    )
    speedups = [data[d][0] for d in SIZES]
    # Decreasing speedup with array size (small max()-boundary wiggles
    # in the overlap model are tolerated).
    assert all(a >= b - 0.05 for a, b in zip(speedups, speedups[1:]))
    assert speedups[0] > speedups[-1] * 1.15
    # Speedup persists even on the largest array.
    assert speedups[-1] > 1.0
