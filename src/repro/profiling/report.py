"""Paper-style text report generation.

:func:`full_report` runs the complete analytic evaluation — workload
characterization plus all hardware configurations for every benchmark
network — and renders one readable report.  Used by the
``reproduce_all`` example and the CLI.
"""

from __future__ import annotations

import io

import numpy as np

from .cost_model import compare_strategies

__all__ = ["full_report", "characterization_report", "soc_report",
           "format_table"]

# NOTE: repro.hw / repro.networks are imported lazily inside the report
# functions — repro.core imports repro.profiling.trace, so a top-level
# import here would be circular.


def format_table(title, headers, rows):
    """Render one aligned text table."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), max((len(r[i]) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    out = io.StringIO()
    out.write(f"== {title} ==\n")
    out.write("  ".join(h.ljust(w) for h, w in zip(headers, widths)) + "\n")
    for row in rows:
        out.write("  ".join(c.ljust(w) for c, w in zip(row, widths)) + "\n")
    return out.getvalue()


def characterization_report(networks=None, gpu=None):
    """§III: GPU latency, phase split, MAC/activation analysis."""
    from ..hw import TX2_GPU
    from ..networks import PROFILED_NETWORKS, build_network

    networks = networks or PROFILED_NETWORKS
    gpu = gpu or TX2_GPU
    rows_latency, rows_macs = [], []
    for name in networks:
        net = build_network(name)
        cmp = compare_strategies(net)
        result = gpu.run(cmp.original)
        rows_latency.append(
            (
                name,
                f"{result.total_time * 1e3:.1f} ms",
                f"{result.phase_percent('N'):.0f}%",
                f"{result.phase_percent('A'):.0f}%",
                f"{result.phase_percent('F'):.0f}%",
            )
        )
        rows_macs.append(
            (
                name,
                f"{cmp.original.mlp_macs() / 1e9:.2f} G",
                f"{cmp.delayed.mlp_macs() / 1e9:.2f} G",
                f"{cmp.mac_reduction_percent:.0f}%",
                f"{cmp.max_layer_output_original / 2**20:.1f} MB",
                f"{cmp.max_layer_output_delayed / 2**20:.2f} MB",
            )
        )
    text = format_table(
        "GPU characterization (original algorithm)",
        ["Network", "Latency", "N", "A", "F"],
        rows_latency,
    )
    text += "\n" + format_table(
        "Workload: MLP MACs and peak layer output",
        ["Network", "MACs orig", "MACs delayed", "Reduction",
         "Peak act orig", "Peak act delayed"],
        rows_macs,
    )
    return text


def soc_report(networks=None, soc=None):
    """§VII: the full platform ladder per network."""
    from ..hw import SoC
    from ..networks import ALL_NETWORKS, build_network

    networks = networks or ALL_NETWORKS
    soc = soc or SoC()
    rows = []
    speedups = {"sw": [], "hw": [], "hw_nse": []}
    for name in networks:
        net = build_network(name)
        gpu_r = soc.simulate(net, "gpu")
        base = soc.simulate(net, "baseline")
        sw = soc.simulate(net, "mesorasi_sw")
        hw = soc.simulate(net, "mesorasi_hw")
        base_nse = soc.simulate(net, "baseline_nse")
        hw_nse = soc.simulate(net, "mesorasi_hw_nse")
        speedups["sw"].append(base.latency / sw.latency)
        speedups["hw"].append(base.latency / hw.latency)
        speedups["hw_nse"].append(base_nse.latency / hw_nse.latency)
        rows.append(
            (
                name,
                f"{gpu_r.latency * 1e3:.1f}",
                f"{base.latency * 1e3:.1f}",
                f"{sw.latency * 1e3:.1f}",
                f"{hw.latency * 1e3:.1f}",
                f"{base.latency / hw.latency:.2f}x",
                f"{hw.energy_reduction_over(base) * 100:.0f}%",
                f"{base_nse.latency / hw_nse.latency:.2f}x",
            )
        )

    def geomean(xs):
        return float(np.exp(np.mean(np.log(xs))))

    rows.append(
        (
            "GEOMEAN", "", "", "", "",
            f"{geomean(speedups['hw']):.2f}x", "",
            f"{geomean(speedups['hw_nse']):.2f}x",
        )
    )
    return format_table(
        "SoC evaluation (latencies in ms)",
        ["Network", "GPU", "GPU+NPU", "Mesorasi-SW", "Mesorasi-HW",
         "HW speedup", "HW E-red", "HW+NSE speedup"],
        rows,
    )


def full_report(soc=None, gpu=None):
    """The complete paper-style report as one string."""
    parts = [
        "Mesorasi reproduction — analytic evaluation report",
        "=" * 52,
        "",
        characterization_report(gpu=gpu),
        "",
        soc_report(soc=soc),
    ]
    return "\n".join(parts)
