"""Fig 7: MAC operations of point cloud networks (130K-point frames)
vs conventional CNNs (~130K-pixel frames).

The paper: at matched "resolution", feature computation in point cloud
networks costs an order of magnitude more MACs than classic CNNs.
"""

from conftest import print_table

from repro.networks import PROFILED_NETWORKS, build_network
from repro.profiling import CNN_MODELS

PIXELS = 130_000


def test_fig7_mac_comparison(benchmark):
    def run():
        cnn = {
            name: factory().macs_at_pixels(PIXELS)
            for name, factory in CNN_MODELS.items()
        }
        pc = {}
        for name in PROFILED_NETWORKS:
            canonical = build_network(name)
            scaled = build_network(name, scale=PIXELS / canonical.paper_n_points)
            pc[name] = scaled.trace("original").mlp_macs()
        return cnn, pc

    cnn, pc = benchmark(run)
    rows = [(n, f"{m / 1e9:.1f}", "CNN") for n, m in cnn.items()]
    rows += [(n, f"{m / 1e9:.1f}", "Point cloud") for n, m in pc.items()]
    print_table("Fig 7: MAC ops (GMACs) at ~130K points/pixels",
                ["Workload", "GMACs", "Family"], rows)
    # Order-of-magnitude gap between the families (geometric means).
    from conftest import geomean

    assert geomean(pc.values()) > 5 * geomean(cnn.values())
    # Every point cloud network out-costs every CNN except YOLOv2-sized
    # detectors vs the smallest point network; the max-vs-max and
    # min-vs-min orderings must hold.
    assert max(pc.values()) > 10 * max(cnn.values())
    assert min(pc.values()) > min(cnn.values())
