"""LPDDR3 DRAM model (§VI: Micron 16Gb LPDDR3-1600, 4 channels).

The paper computes DRAM energy from memory traffic using Micron's power
calculators and notes that DRAM energy per bit is about 70x that of
SRAM.  We keep exactly that structure: a bandwidth for latency
estimates and a per-byte energy tied to the SRAM energy by the 70x
ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DRAMModel", "LPDDR3"]


@dataclass(frozen=True)
class DRAMModel:
    """Bandwidth/energy model of a mobile DRAM part."""

    name: str = "LPDDR3-1600 x4ch"
    #: Peak bandwidth in bytes/s (1600 MT/s * 4 channels * 4 B/transfer).
    bandwidth: float = 25.6e9
    #: Energy per byte in Joules (~4.3 pJ/bit, 70x the SRAM energy/bit).
    energy_per_byte: float = 34.4e-12

    def transfer_time(self, n_bytes):
        """Seconds to move ``n_bytes`` at peak bandwidth."""
        if n_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return n_bytes / self.bandwidth

    def transfer_energy(self, n_bytes):
        """Joules to move ``n_bytes``."""
        if n_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return n_bytes * self.energy_per_byte


#: The default part used throughout the evaluation.
LPDDR3 = DRAMModel()
