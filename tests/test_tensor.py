"""Unit tests for the autograd engine, including numeric gradient checks."""

import numpy as np
import pytest

from repro.neural import Tensor, concat, no_grad, stack


def numeric_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn at numpy array x."""
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_grad(op, *shapes, seed=0):
    """Compare autograd against numeric gradients for every input."""
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(size=s) for s in shapes]
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = op(*tensors)
    loss = (out * out).sum()
    loss.backward()
    for i, (arr, t) in enumerate(zip(arrays, tensors)):
        def scalar_fn(x, i=i):
            args = [Tensor(a) for a in arrays]
            args[i] = Tensor(x)
            o = op(*args)
            return float((o * o).sum().data)

        expected = numeric_grad(scalar_fn, arr.copy())
        assert t.grad is not None, f"input {i} got no gradient"
        np.testing.assert_allclose(t.grad, expected, rtol=1e-4, atol=1e-6)


class TestArithmetic:
    def test_add_grad(self):
        check_grad(lambda a, b: a + b, (3, 4), (3, 4))

    def test_add_broadcast_grad(self):
        check_grad(lambda a, b: a + b, (3, 4), (4,))

    def test_sub_grad(self):
        check_grad(lambda a, b: a - b, (2, 5), (2, 5))

    def test_sub_broadcast_row(self):
        check_grad(lambda a, b: a - b, (4, 3), (1, 3))

    def test_mul_grad(self):
        check_grad(lambda a, b: a * b, (3, 3), (3, 3))

    def test_div_grad(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 3)) + 3.0, requires_grad=True)
        ((a / b) ** 2).sum().backward()
        assert a.grad is not None and b.grad is not None

    def test_pow_grad(self):
        check_grad(lambda a: (a * a + 1.0) ** 2, (3, 2))

    def test_neg(self):
        t = Tensor([1.0, -2.0], requires_grad=True)
        (-t).sum().backward()
        np.testing.assert_allclose(t.grad, [-1.0, -1.0])

    def test_radd_rsub_rmul(self):
        t = Tensor([2.0])
        assert (1 + t).data[0] == 3.0
        assert (1 - t).data[0] == -1.0
        assert (3 * t).data[0] == 6.0
        assert (4 / t).data[0] == 2.0

    def test_scalar_exponent_required(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])


class TestMatmul:
    def test_matmul_grad(self):
        check_grad(lambda a, b: a @ b, (4, 3), (3, 5))

    def test_matmul_chain(self):
        check_grad(lambda a, b, c: (a @ b) @ c, (2, 3), (3, 4), (4, 2))

    def test_matmul_values(self):
        a = Tensor(np.eye(3))
        b = Tensor(np.arange(9.0).reshape(3, 3))
        np.testing.assert_allclose((a @ b).data, b.data)


class TestNonlinearities:
    def test_relu_grad(self):
        check_grad(lambda a: a.relu(), (5, 4))

    def test_relu_values(self):
        t = Tensor([[-1.0, 2.0], [0.5, -3.0]])
        np.testing.assert_allclose(t.relu().data, [[0, 2.0], [0.5, 0]])

    def test_exp_log_roundtrip(self):
        t = Tensor([[1.0, 2.0]], requires_grad=True)
        out = t.exp().log()
        np.testing.assert_allclose(out.data, t.data)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((1, 2)), atol=1e-9)

    def test_sqrt_grad(self):
        rng = np.random.default_rng(0)
        a = rng.random((3, 3)) + 0.5
        t = Tensor(a, requires_grad=True)
        t.sqrt().sum().backward()
        np.testing.assert_allclose(t.grad, 0.5 / np.sqrt(a))

    def test_tanh_sigmoid_grads(self):
        check_grad(lambda a: a.tanh(), (3, 3))
        check_grad(lambda a: a.sigmoid(), (3, 3))


class TestReductions:
    def test_sum_all(self):
        check_grad(lambda a: a.sum() * Tensor(1.0), (3, 4))

    def test_sum_axis(self):
        check_grad(lambda a: a.sum(axis=0), (3, 4))

    def test_sum_keepdims(self):
        t = Tensor(np.ones((2, 3)), requires_grad=True)
        out = t.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)

    def test_mean(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full((2, 3), 1 / 6))

    def test_max_reduction_values(self):
        t = Tensor([[1.0, 5.0], [3.0, 2.0]])
        np.testing.assert_allclose(t.max(axis=0).data, [3.0, 5.0])

    def test_max_grad_flows_to_argmax_only(self):
        t = Tensor([[1.0, 5.0], [3.0, 2.0]], requires_grad=True)
        t.max(axis=0).sum().backward()
        np.testing.assert_allclose(t.grad, [[0, 1.0], [1.0, 0]])

    def test_max_3d_axis1(self):
        # The neighborhood reduction shape: (centroids, k, features).
        check_grad(lambda a: a.max(axis=1), (4, 6, 3), seed=3)


class TestShapes:
    def test_reshape_grad(self):
        check_grad(lambda a: a.reshape(6, 2), (3, 4))

    def test_transpose_grad(self):
        check_grad(lambda a: a.transpose(), (3, 4))

    def test_transpose_axes(self):
        t = Tensor(np.zeros((2, 3, 4)), requires_grad=True)
        out = t.transpose((2, 0, 1))
        assert out.shape == (4, 2, 3)
        out.sum().backward()
        assert t.grad.shape == (2, 3, 4)

    def test_concat_grad(self):
        check_grad(lambda a, b: concat([a, b], axis=1), (2, 3), (2, 2))

    def test_stack(self):
        a, b = Tensor([1.0, 2.0], requires_grad=True), Tensor([3.0, 4.0])
        out = stack([a, b])
        assert out.shape == (2, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])


class TestGather:
    def test_gather_values(self):
        t = Tensor(np.arange(12.0).reshape(4, 3))
        out = t.gather(np.array([[0, 2], [1, 1]]))
        assert out.shape == (2, 2, 3)
        np.testing.assert_allclose(out.data[0, 1], [6.0, 7.0, 8.0])

    def test_gather_grad_scatter_adds(self):
        # A point in many neighborhoods accumulates gradient from each —
        # the data-reuse property delayed-aggregation exploits.
        t = Tensor(np.zeros((3, 2)), requires_grad=True)
        out = t.gather(np.array([0, 0, 0, 1]))
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [[3.0, 3.0], [1.0, 1.0], [0.0, 0.0]])

    def test_getitem_grad(self):
        t = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        t[np.array([0, 2])].sum().backward()
        np.testing.assert_allclose(t.grad, [[1, 1], [0, 0], [1, 1]])


class TestAutogradMachinery:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_grad_accumulates_across_uses(self):
        t = Tensor([2.0], requires_grad=True)
        (t * t + t).sum().backward()  # d/dt (t^2 + t) = 2t + 1 = 5
        np.testing.assert_allclose(t.grad, [5.0])

    def test_diamond_graph(self):
        t = Tensor([3.0], requires_grad=True)
        a = t * 2
        b = t * 4
        (a + b).sum().backward()
        np.testing.assert_allclose(t.grad, [6.0])

    def test_no_grad_context(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = t * 2
        assert out._backward is None
        assert not out.requires_grad

    def test_detach(self):
        t = Tensor([1.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad

    def test_non_requires_grad_gets_none(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0])
        (a * b).sum().backward()
        assert b.grad is None

    def test_no_grad_is_thread_local(self):
        # Grad mode must not leak across threads: the serving dispatcher
        # and scheduler worker threads enter no_grad() concurrently, and
        # a process-global flag with save/restore semantics can leave
        # inference mode stuck on in the main thread (interleaved
        # enter/exit restoring a stale snapshot).
        from threading import Barrier, Thread

        from repro.neural.tensor import is_grad_enabled

        barrier = Barrier(2)
        seen = []

        def worker():
            with no_grad():
                barrier.wait(timeout=30.0)   # inside worker no_grad
                barrier.wait(timeout=30.0)   # main thread checked
            seen.append(is_grad_enabled())

        thread = Thread(target=worker)
        thread.start()
        barrier.wait(timeout=30.0)
        assert is_grad_enabled()             # unaffected by the worker
        t = Tensor([1.0], requires_grad=True)
        assert t.requires_grad
        barrier.wait(timeout=30.0)
        thread.join(30.0)
        assert seen == [True]                # worker restored its own state
        assert is_grad_enabled()
