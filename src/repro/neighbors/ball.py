"""Ball query: radius-bounded neighborhood search.

PointNet++ modules use ball query (radius search capped at K samples)
rather than plain KNN so that neighborhoods have a bounded physical
extent.  Rows are padded by repeating the first hit, matching the
reference implementation's behaviour.
"""

from __future__ import annotations

import numpy as np

from .brute import pairwise_squared_distances

__all__ = ["ball_query"]


def ball_query(points, queries, radius, max_samples):
    """Up to ``max_samples`` points within ``radius`` of each query.

    Returns
    -------
    indices : (Q, max_samples) int array
        Neighbor indices.  If a query has fewer than ``max_samples``
        points in range, the first found index is repeated (as in the
        PointNet++ reference CUDA kernel).  If a query has *no* point in
        range, the nearest point is used.
    counts : (Q,) int array
        Number of genuine (non-padded) neighbors per query.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    if max_samples <= 0:
        raise ValueError("max_samples must be positive")
    d = pairwise_squared_distances(queries, points)
    r_sq = radius * radius
    q_count = d.shape[0]
    indices = np.empty((q_count, max_samples), dtype=np.int64)
    counts = np.empty(q_count, dtype=np.int64)
    for row in range(q_count):
        hits = np.nonzero(d[row] <= r_sq)[0]
        if len(hits) == 0:
            hits = np.array([int(np.argmin(d[row]))])
        kept = hits[:max_samples]
        counts[row] = len(kept)
        if len(kept) < max_samples:
            pad = np.full(max_samples - len(kept), kept[0])
            kept = np.concatenate([kept, pad])
        indices[row] = kept
    return indices, counts
