"""Tests for whole-network graphs: builders, network-aware passes,
executors, cross-module schedules, trace lowering, and the
execution/trace/composition equivalence properties."""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import ModuleSpec, PointCloudModule, emit_module_trace
from repro.engine import AsyncRunner, OverlapNetworkExecutor, ParallelRunner
from repro.engine.bench import bench_netgraph
from repro.graph import (
    NetworkEagerExecutor,
    OpRecorder,
    build_network_graph,
    compile_network_plan,
    module_graph,
    schedule_graph,
)
from repro.networks import ALL_NETWORKS, FCHead, PointCloudNetwork, build_network
from repro.neural import no_grad
from repro.profiling.trace import (
    ConcatOp,
    GatherOp,
    InterpolateOp,
    MatMulOp,
    NeighborSearchOp,
    ReduceMaxOp,
    SampleOp,
    SubtractOp,
    Trace,
)

STRATEGIES = ("original", "delayed", "limited")


def toy(name, seed=0):
    scale = 0.03125 if "(s)" in name else 0.0625
    return build_network(name, num_classes=4, scale=scale,
                         rng=np.random.default_rng(seed))


def cloud_for(net, seed=0):
    return np.random.default_rng(seed).normal(size=(net.n_points, 3))


def clouds_for(net, batch, seed=0):
    return np.random.default_rng(seed).normal(size=(batch, net.n_points, 3))


def outputs_equal(left, right, atol=0):
    if isinstance(left, dict):
        assert set(left) == set(right)
        return all(outputs_equal(left[k], right[k], atol) for k in left)
    left = left.data if hasattr(left, "data") else left
    right = right.data if hasattr(right, "data") else right
    if atol:
        np.testing.assert_allclose(left, right, atol=atol)
        return True
    return bool(np.array_equal(np.asarray(left), np.asarray(right)))


class TestBuild:
    @pytest.mark.parametrize("name", ALL_NETWORKS)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_every_network_lowers_to_one_graph(self, name, strategy):
        net = toy(name)
        ngraph = net.network_graph(strategy)
        ngraph.graph.validate()
        expected_modules = len(net.encoder) + len(
            getattr(net, "box_encoder", [])
        )
        assert len(ngraph.regions) == expected_modules
        # Every region's nodes survived the pipeline and stay tagged.
        tagged = {n.attrs.get("module") for n in ngraph.graph
                  if "module" in n.attrs}
        assert len(tagged) == expected_modules

    def test_network_graph_is_memoized_per_strategy(self):
        net = toy("PointNet++ (c)")
        assert net.network_graph("delayed") is net.network_graph("delayed")
        assert net.network_graph("delayed") is not net.network_graph("original")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            toy("PointNet++ (c)").network_graph("eager")

    def test_plan_carries_network_graph(self):
        net = toy("F-PointNet")
        plan = compile_network_plan(net, "delayed")
        assert plan.graph is net.network_graph("delayed")
        text = plan.describe()
        assert "network graph" in text and "module regions" in text

    def test_delayed_rewrite_applies_per_region(self):
        net = toy("PointNet++ (c)")
        graph = net.network_graph("delayed").graph
        for region in net.network_graph("delayed").regions:
            matmuls = [n for n in graph
                       if n.kind == "matmul"
                       and n.attrs.get("module") == region.module]
            assert matmuls and all(m.parallelizable for m in matmuls)
            aggs = [n for n in graph
                    if n.kind == "aggregate"
                    and n.attrs.get("module") == region.module]
            assert len(aggs) == 1 and aggs[0].attrs["reduce"] is True


class TestExecutionEquivalence:
    """Whole-network graph execution is bit-exact against composing the
    same modules through the per-module forward path."""

    @pytest.mark.parametrize("name", ALL_NETWORKS)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_single_cloud_bit_exact_vs_composed(self, name, strategy):
        net = toy(name)
        cloud = cloud_for(net, seed=1)
        with no_grad():
            graph_out = net.forward(cloud, strategy=strategy)
            composed = net.forward_composed(cloud, strategy=strategy)
        assert outputs_equal(graph_out, composed)

    @pytest.mark.parametrize("name", ALL_NETWORKS)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_batched_bit_exact_vs_composed(self, name, strategy):
        net = toy(name)
        clouds = clouds_for(net, 2, seed=2)
        with no_grad():
            graph_out = net.forward_batch(clouds, strategy=strategy)
            composed = net.forward_composed(clouds, strategy=strategy)
        assert outputs_equal(graph_out, composed)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_batched_matches_single_within_tolerance(self, strategy):
        net = toy("PointNet++ (c)")
        clouds = clouds_for(net, 3, seed=3)
        with no_grad():
            batched = net.forward_batch(clouds, strategy=strategy)
            for b in range(3):
                single = net.forward(clouds[b], strategy=strategy)
                np.testing.assert_allclose(batched.data[b], single.data[0],
                                           atol=1e-6)


class TestTraceConsistency:
    """Executed op shapes equal the lowered network-trace op shapes —
    the PR 2 property, now spanning heads, decoders and skip glue."""

    def expand(self, record):
        """One executed record -> its lowered trace-op equivalents."""
        kind = record["kind"]
        if kind == "sample":
            if record["n_samples"] == record["n_points"]:
                return []  # degenerate sampling is never traced
            return [("sample", record["n_points"], record["n_samples"])]
        if kind == "search":
            return [("search", record["n_queries"], record["n_points"],
                     record["k"], record["dim"])]
        if kind == "gather":
            return [("gather", record["n_centroids"], record["k"],
                     record["feature_dim"], record["table_rows"])]
        if kind == "subtract":
            return [("subtract", record["rows"], record["dim"])]
        if kind == "matmul":
            return [("matmul", record["rows"], record["in_dim"],
                     record["out_dim"])]
        if kind == "reduce_max":
            return [("reduce_max", record["n_centroids"], record["k"],
                     record["feature_dim"])]
        if kind == "concat":
            if not record["traced"]:
                return []
            return [("concat", record["rows"], record["dim"])]
        if kind in ("head", "propagate"):
            dims = record["dims"]
            rows = record["rows"]
            ops = [("matmul", rows, a, b)
                   for a, b in zip(dims[:-1], dims[1:])]
            if kind == "propagate":
                ops = [("interpolate", rows, dims[0])] + ops
            return ops
        if kind == "global_max":
            return [("reduce_max", 1, record["k"], record["dim"])]
        raise AssertionError(f"unexpected executed kind {kind!r}")

    def lower(self, op):
        """One trace op -> the same comparison tuple."""
        if isinstance(op, SampleOp):
            return ("sample", op.n_points, op.n_samples)
        if isinstance(op, NeighborSearchOp):
            return ("search", op.n_queries, op.n_points, op.k, op.dim)
        if isinstance(op, GatherOp):
            return ("gather", op.n_centroids, op.k, op.feature_dim,
                    op.table_rows)
        if isinstance(op, SubtractOp):
            return ("subtract", op.rows, op.dim)
        if isinstance(op, MatMulOp):
            return ("matmul", op.rows, op.in_dim, op.out_dim)
        if isinstance(op, ReduceMaxOp):
            return ("reduce_max", op.n_centroids, op.k, op.feature_dim)
        if isinstance(op, ConcatOp):
            return ("concat", op.rows, op.dim)
        if isinstance(op, InterpolateOp):
            return ("interpolate", op.n_points, op.feature_dim)
        raise AssertionError(f"unexpected trace op {type(op).__name__}")

    @pytest.mark.parametrize("name", ALL_NETWORKS)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_executed_matches_lowered(self, name, strategy):
        net = toy(name)
        recorder = OpRecorder()
        with no_grad():
            net.forward(cloud_for(net, seed=4), strategy=strategy,
                        executor=NetworkEagerExecutor(recorder=recorder))
        executed = [item for record in recorder.records
                    for item in self.expand(record)]
        lowered = [self.lower(op) for op in net.trace(strategy)]
        assert executed == lowered, f"{name} [{strategy}]"


class TestTraceMatchesLegacyEmission:
    """The network-graph lowering reproduces the pre-refactor analytic
    emission (module streams + hand-written tails) exactly."""

    def head_ops(self, trace, dims, rows):
        for a, b in zip(dims[:-1], dims[1:]):
            trace.add(MatMulOp("F", "head", rows=rows, in_dim=a, out_dim=b))

    def fp_ops(self, trace, fp):
        dims = fp.mlp.dims
        trace.add(InterpolateOp("O", fp.name, n_points=fp.n_points, k=fp.K,
                                feature_dim=dims[0]))
        for a, b in zip(dims[:-1], dims[1:]):
            trace.add(MatMulOp("F", fp.name, rows=fp.n_points,
                               in_dim=a, out_dim=b))

    def embed_tail(self, trace, net, label="embed"):
        n = net.n_points
        trace.add(MatMulOp("F", label, rows=n, in_dim=net.embed.dims[0],
                           out_dim=net.embed.dims[-1]))
        trace.add(ReduceMaxOp("F", label, n_centroids=1, k=n,
                              feature_dim=net.embed.dims[-1]))

    def reference(self, net, strategy):
        """The legacy per-network emission, ported verbatim."""
        trace = Trace(net.name, strategy)
        name = net.name
        for module in net.encoder:
            emit_module_trace(module.spec, strategy, trace)
        n = net.n_points
        if name in ("PointNet++ (c)", "DensePoint"):
            self.head_ops(trace, net.head.dims, rows=1)
        elif name == "PointNet++ (s)":
            for fp in (net.fp3, net.fp2, net.fp1):
                self.fp_ops(trace, fp)
            self.head_ops(trace, net.head.dims, rows=n)
        elif name in ("DGCNN (c)", "LDGCNN"):
            label = "skip" if name == "DGCNN (c)" else "link"
            trace.add(ConcatOp("O", label, rows=n, dim=net.embed.dims[0]))
            self.embed_tail(trace, net)
            self.head_ops(trace, net.head.dims, rows=1)
        elif name == "DGCNN (s)":
            trace.add(ConcatOp("O", "skip", rows=n, dim=net.embed.dims[0]))
            self.embed_tail(trace, net)
            trace.add(ConcatOp("O", "fuse", rows=n, dim=net.head.dims[0]))
            self.head_ops(trace, net.head.dims, rows=n)
        elif name == "F-PointNet":
            # Execution order: decoders and the mask head run before the
            # box stage (the legacy emission listed the box modules
            # first; same op multiset, grouped per module either way).
            for fp in (net.fp3, net.fp2, net.fp1):
                self.fp_ops(trace, fp)
            self.head_ops(trace, net.mask_head.dims, rows=n)
            for module in net.box_encoder:
                emit_module_trace(module.spec, strategy, trace)
            self.head_ops(trace, net.box_head.dims, rows=1)
        else:
            raise AssertionError(f"no reference emission for {name}")
        return trace

    @pytest.mark.parametrize("name", ALL_NETWORKS)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_exact_match(self, name, strategy):
        net = build_network(name)  # paper scale — tracing is analytic
        assert list(net.trace(strategy)) == list(self.reference(net, strategy))


class DeadSkipNetwork(PointCloudNetwork):
    """Two-module classifier whose builder can emit a dead skip branch:
    a skip concat (plus a head consuming it) with no path to the
    outputs.  DCE must drop the branch without changing the outputs."""

    name = "dead-skip"
    task = "classification"

    def __init__(self, include_dead, rng=None):
        rng = rng or np.random.default_rng(0)
        specs = [
            ModuleSpec("d1", n_in=64, n_out=32, k=8, mlp_dims=(3, 16)),
            ModuleSpec("d2", n_in=32, n_out=8, k=8, mlp_dims=(16, 24)),
        ]
        super().__init__([PointCloudModule(s, rng=rng) for s in specs],
                         rng=rng)
        self.include_dead = include_dead
        self.num_classes = 4
        self.head = FCHead([24, 4], rng=rng)

    def _build_graph(self, nb):
        coords, feats = nb.input()
        levels = nb.encoder(self.encoder, coords, feats)
        if self.include_dead:
            dead_skip = nb.concat(
                [levels[1][1], levels[2][1]], rows=32, dim=40,
                label="dead-skip",
            )
            nb.head(self.head, dead_skip, rows=32)  # unused head input
        pooled = nb.global_max(levels[2][1], k=8, dim=24, label="pool")
        nb.output(nb.head(self.head, pooled, rows=1))


class TestDeadCodeElimination:
    def test_dead_skip_branch_dropped_outputs_unchanged(self):
        with_dead = DeadSkipNetwork(include_dead=True,
                                    rng=np.random.default_rng(5))
        clean = DeadSkipNetwork(include_dead=False,
                                rng=np.random.default_rng(5))
        dead_graph = with_dead.network_graph("delayed").graph
        clean_graph = clean.network_graph("delayed").graph
        # DCE removed the dead concat and the dead head entirely: the
        # lowered programs are node-for-node identical.
        assert not any(n.kind == "concat" for n in dead_graph)
        assert len(dead_graph) == len(clean_graph)
        assert [n.kind for n in dead_graph] == [n.kind for n in clean_graph]
        cloud = cloud_for(with_dead, seed=6)
        with no_grad():
            assert outputs_equal(with_dead.forward(cloud),
                                 clean.forward(cloud))
        # The dead branch never shows up in the trace either.
        assert not with_dead.trace("delayed").by_type(ConcatOp)


class TestCrossModuleSchedule:
    def test_delayed_pointnet_has_cross_module_overlap(self):
        net = toy("PointNet++ (c)")
        schedule = net.network_graph("delayed").schedule()
        cross = schedule.cross_module_overlap_steps()
        assert len(cross) >= 1
        # A cross-module step really does pair module i+1's N lane with
        # module i's F-lane compute.
        step = cross[0]
        n_mods = {e.node.attrs.get("module") for e in step if e.lane == "N"}
        f_mods = {e.node.attrs.get("module") for e in step if e.lane == "F"
                  and "module" in e.node.attrs}
        assert n_mods - f_mods

    def test_original_order_has_no_intra_module_overlap(self):
        # Original order cannot overlap a module's own N and F phases
        # (the paper's point) — but the network graph still exposes
        # *cross-module* concurrency even here, because sampling flows
        # through the coords chain and never waits on features.
        net = toy("PointNet++ (c)")
        schedule = net.network_graph("original").schedule()
        for step in schedule.overlap_steps():
            intra = {
                e.node.attrs.get("module")
                for e in step if e.lane == "N"
            } & {
                e.node.attrs.get("module")
                for e in step
                if e.lane == "F" and "module" in e.node.attrs
            }
            assert not intra, "original order must not overlap within a module"

    def test_network_overlap_at_least_per_module_sum(self):
        for strategy in ("delayed", "limited"):
            net = toy("PointNet++ (c)")
            network = net.network_graph(strategy).schedule()
            per_module = sum(
                len(schedule_graph(module_graph(m.spec, strategy))
                    .overlap_steps())
                for m in net.encoder
            )
            assert len(network.overlap_steps()) >= per_module

    def test_describe_mentions_cross_module(self):
        net = toy("PointNet++ (c)")
        text = net.network_graph("delayed").schedule().describe()
        assert "cross-module" in text

    def test_cli_schedule_prints_cross_module(self, capsys):
        from repro.cli import main

        assert main(["trace", "PointNet++ (c)", "--strategy", "delayed",
                     "--schedule"]) == 0
        out = capsys.readouterr().out
        assert "cross-module overlap steps" in out


class ThreadSafeLog:
    def __init__(self):
        self.lock = threading.Lock()
        self.events = []

    def __call__(self, event, node):
        with self.lock:
            self.events.append((event, node.id))


class TestOverlapNetworkExecutor:
    @pytest.mark.parametrize("name", ["PointNet++ (c)", "DGCNN (c)",
                                      "F-PointNet"])
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_bit_exact_vs_serial_network_executor(self, name, strategy):
        net = toy(name)
        cloud = cloud_for(net, seed=7)
        with no_grad(), ThreadPoolExecutor(max_workers=2) as pool:
            serial = net.forward(cloud, strategy=strategy)
            overlapped = net.forward(cloud, strategy=strategy,
                                     executor=OverlapNetworkExecutor(pool))
        assert outputs_equal(serial, overlapped)

    def test_dependency_order_property(self):
        net = toy("PointNet++ (c)")
        cloud = cloud_for(net, seed=8)
        graph = net.network_graph("delayed").graph
        pool = ThreadPoolExecutor(max_workers=3)
        try:
            for _ in range(3):
                log = ThreadSafeLog()
                with no_grad():
                    net.forward(cloud, strategy="delayed",
                                executor=OverlapNetworkExecutor(
                                    pool, observer=log))
                assert len(log.events) == 2 * len(graph)
                starts, finishes = {}, {}
                for index, (event, nid) in enumerate(log.events):
                    if event == "start":
                        starts.setdefault(nid, index)
                    else:
                        finishes[nid] = index
                for node in graph:
                    for parent in node.inputs:
                        assert finishes[parent] < starts[node.id], (
                            f"node {node.id} ({node.kind}) started before "
                            f"producer {parent} finished"
                        )
        finally:
            pool.shutdown()

    def test_async_runner_uses_network_graph(self):
        net = toy("PointNet++ (c)")
        clouds = clouds_for(net, 3, seed=9)
        with AsyncRunner(net, max_workers=2, in_flight=2) as runner:
            result = runner.run(clouds)
            expected = runner.run_sequential(clouds)
        np.testing.assert_array_equal(result.outputs, expected.outputs)


class TestPersistentParallelRunner:
    def test_initializer_applied_on_serial_path(self):
        calls = []
        runner = ParallelRunner(backend="serial",
                                initializer=calls.append, initargs=(1,))
        assert runner.map(lambda x: x + 1, [1, 2]) == [2, 3]
        assert calls == [1]
        assert runner.map(lambda x: x * 2, [3]) == [6]
        # Re-applied per map: worker state is typically module-global,
        # so a memoized init would go stale if another runner ran.
        assert calls == [1, 1]

    def test_interleaved_serial_runners_keep_their_own_state(self):
        # Two runners installing different "networks" into shared
        # worker state must not serve each other's tasks after
        # interleaving — the serial path re-initializes per map.
        state = {}

        def install(value):
            state["net"] = value

        a = ParallelRunner(backend="serial", initializer=install,
                           initargs=("A",))
        b = ParallelRunner(backend="serial", initializer=install,
                           initargs=("B",))
        read = lambda _: state["net"]  # noqa: E731
        assert a.map(read, [0]) == ["A"]
        assert b.map(read, [0]) == ["B"]
        assert a.map(read, [0]) == ["A"]  # A's state restored, not B's

    def test_persistent_thread_pool_survives_maps(self):
        with ParallelRunner(max_workers=2, backend="thread",
                            persistent=True) as runner:
            assert runner.map(len, [[1], [1, 2]]) == [1, 2]
            pool = runner._pool
            assert pool is not None
            assert runner.map(len, [[1, 2, 3], []]) == [3, 0]
            assert runner._pool is pool
        assert runner._pool is None  # context exit released it

    def test_async_runner_process_backend_reuses_runner(self):
        net = toy("PointNet++ (c)")
        clouds = clouds_for(net, 2, seed=10)
        with AsyncRunner(net, backend="process", max_workers=2) as runner:
            first = runner.run(clouds)
            process_runner = runner._process_runner
            assert process_runner is not None
            assert process_runner.persistent
            second = runner.run(clouds)
            assert runner._process_runner is process_runner
        assert runner._process_runner is None
        expected = AsyncRunner(net, backend="serial").run(clouds)
        np.testing.assert_array_equal(first.outputs, expected.outputs)
        np.testing.assert_array_equal(second.outputs, expected.outputs)


class TestNetgraphBenchRow:
    def test_row_passes_its_own_gates(self):
        row = bench_netgraph(batch=2, scale=0.0625, repeats=1)
        assert row["bit_exact"] is True
        assert row["cross_module_overlap_steps"] >= 1
        assert row["network_overlap_steps"] >= row["module_overlap_steps"]
        assert row["composed_ms"] > 0 and row["netgraph_ms"] > 0


class TestBuilderValidation:
    def test_no_outputs_rejected(self):
        class NoOutputs(DeadSkipNetwork):
            def _build_graph(self, nb):
                coords, feats = nb.input()
                nb.encoder(self.encoder, coords, feats)

        with pytest.raises(ValueError, match="no outputs"):
            build_network_graph(NoOutputs(include_dead=False), "delayed")
