"""Tests for the user-facing generic network builder."""

import numpy as np
import pytest

from repro.core import ModuleSpec
from repro.hw import SoC
from repro.networks.generic import (
    GenericPointCloudNetwork,
    validate_spec_chain,
)

SPECS = (
    ModuleSpec("e1", n_in=64, n_out=32, k=8, mlp_dims=(3, 16)),
    ModuleSpec("e2", n_in=32, n_out=8, k=8, mlp_dims=(16, 32)),
    ModuleSpec("e3", n_in=8, n_out=1, k=8, mlp_dims=(32, 64)),
)

SEG_SPECS = (
    ModuleSpec("s1", n_in=32, n_out=32, k=6, mlp_dims=(3, 16)),
    ModuleSpec("s2", n_in=32, n_out=32, k=6, mlp_dims=(16, 32)),
)


class TestSpecChainValidation:
    def test_valid_chain(self):
        assert validate_spec_chain(SPECS) == list(SPECS)

    def test_empty_chain(self):
        with pytest.raises(ValueError):
            validate_spec_chain([])

    def test_point_count_mismatch(self):
        bad = (SPECS[0],
               ModuleSpec("x", n_in=99, n_out=8, k=4, mlp_dims=(16, 32)))
        with pytest.raises(ValueError, match="n_in"):
            validate_spec_chain(bad)

    def test_width_mismatch(self):
        bad = (SPECS[0],
               ModuleSpec("x", n_in=32, n_out=8, k=4, mlp_dims=(99, 32)))
        with pytest.raises(ValueError, match="width"):
            validate_spec_chain(bad)


class TestConstruction:
    def test_head_width_checked(self):
        with pytest.raises(ValueError, match="head input width"):
            GenericPointCloudNetwork(SPECS, head_dims=(100, 4))

    def test_first_module_must_take_coords(self):
        bad = (ModuleSpec("e1", 64, 32, 8, (5, 16)),)
        with pytest.raises(ValueError, match="coordinates"):
            GenericPointCloudNetwork(bad, head_dims=(16, 4))

    def test_bad_task(self):
        with pytest.raises(ValueError, match="task"):
            GenericPointCloudNetwork(SPECS, head_dims=(64, 4), task="magic")

    def test_segmentation_requires_constant_count(self):
        with pytest.raises(ValueError, match="point count"):
            GenericPointCloudNetwork(SPECS, head_dims=(64, 4),
                                     task="segmentation")


class TestExecution:
    def test_classification_forward(self):
        net = GenericPointCloudNetwork(SPECS, head_dims=(64, 16, 4),
                                       rng=np.random.default_rng(0))
        pts = np.random.default_rng(1).normal(size=(64, 3))
        out = net(pts, strategy="delayed")
        assert out.shape == (1, 4)

    def test_segmentation_forward(self):
        net = GenericPointCloudNetwork(
            SEG_SPECS, head_dims=(32, 5), task="segmentation",
            rng=np.random.default_rng(0),
        )
        pts = np.random.default_rng(1).normal(size=(32, 3))
        out = net(pts, strategy="delayed")
        assert out.shape == (32, 5)

    def test_all_strategies(self):
        net = GenericPointCloudNetwork(SPECS, head_dims=(64, 4))
        pts = np.random.default_rng(2).normal(size=(64, 3))
        for strategy in ("original", "delayed", "limited"):
            assert np.isfinite(net(pts, strategy=strategy).data).all()

    def test_gradients_flow(self):
        net = GenericPointCloudNetwork(SPECS, head_dims=(64, 4))
        pts = np.random.default_rng(3).normal(size=(64, 3))
        out = net(pts, strategy="delayed")
        (out * out).sum().backward()
        assert all(p.grad is not None for p in net.parameters())


class TestIntegration:
    def test_trace_and_mac_reduction(self):
        net = GenericPointCloudNetwork(SPECS, head_dims=(64, 4))
        orig = net.trace("original")
        delayed = net.trace("delayed")
        assert delayed.mlp_macs() < orig.mlp_macs()
        assert len(orig.by_phase("N")) == 3

    def test_runs_on_soc(self):
        net = GenericPointCloudNetwork(SPECS, head_dims=(64, 4),
                                       name="tiny")
        soc = SoC()
        base = soc.simulate(net, "baseline")
        hw = soc.simulate(net, "mesorasi_hw")
        assert hw.latency < base.latency
        assert len(hw.au_stats) == 3

    def test_trace_emitted_during_forward(self):
        from repro.profiling import Trace

        net = GenericPointCloudNetwork(SPECS, head_dims=(64, 4))
        pts = np.random.default_rng(4).normal(size=(64, 3))
        t = Trace(net.name, "delayed")
        net(pts, strategy="delayed", trace=t)
        assert t.mlp_macs() == net.trace("delayed").mlp_macs()
