"""Loss functions for training the paper's networks."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["cross_entropy", "mse_loss", "log_softmax", "accuracy"]


def log_softmax(logits):
    """Numerically-stable log-softmax along the last axis."""
    shifted = logits - Tensor(logits.data.max(axis=-1, keepdims=True))
    return shifted - shifted.exp().sum(axis=-1, keepdims=True).log()


def cross_entropy(logits, targets):
    """Mean cross-entropy between (rows, classes) logits and int targets."""
    targets = np.asarray(targets)
    logp = log_softmax(logits)
    rows = logp.shape[0]
    picked = logp[(np.arange(rows), targets)]
    return -picked.sum() * (1.0 / rows)


def mse_loss(pred, target):
    """Mean squared error (used by F-PointNet's box regression head)."""
    target = pred._wrap(target)
    diff = pred - target
    return (diff * diff).mean()


def accuracy(logits, targets):
    """Fraction of rows whose arg-max class matches the target."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    return float((data.argmax(axis=-1) == np.asarray(targets)).mean())
