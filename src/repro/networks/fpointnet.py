"""F-PointNet [41] — frustum-based 3D object detection on KITTI.

F-PointNet lifts a 2D detection to a 3D frustum of points, segments the
object points inside the frustum, and regresses an amodal 3D box from
the segmented points.  The paper profiles the point cloud backbone; the
neighbor searches "return mostly 128 neighbors" (§VII-D), which makes
F-PointNet the stress case for the aggregation unit's bank conflicts.

Our reproduction implements both stages (instance segmentation +
box estimation) on PointNet++-style set-abstraction backbones.
"""

from __future__ import annotations

import numpy as np

from ..core import ModuleSpec, PointCloudModule
from .base import FCHead, FeaturePropagation, PointCloudNetwork, scale_spec

__all__ = ["FPointNet"]


_SEG_SPECS = (
    ModuleSpec("seg_sa1", n_in=1024, n_out=128, k=128, mlp_dims=(3, 64, 64, 128)),
    ModuleSpec("seg_sa2", n_in=128, n_out=32, k=64, mlp_dims=(128, 128, 128, 256)),
    ModuleSpec("seg_sa3", n_in=32, n_out=1, k=32, mlp_dims=(256, 256, 512, 1024)),
)

_BOX_SPECS = (
    ModuleSpec("box_sa1", n_in=512, n_out=128, k=128, mlp_dims=(3, 128, 128, 256)),
    ModuleSpec("box_sa2", n_in=128, n_out=1, k=128, mlp_dims=(256, 256, 512)),
)

#: Box regression output: center (3) + size (3) + heading (1).
BOX_DIM = 7


class FPointNet(PointCloudNetwork):
    """F-PointNet: frustum segmentation + amodal box regression."""

    name = "F-PointNet"
    task = "detection"
    dataset = "KITTI"
    year = 2018
    paper_n_points = 1024

    def __init__(self, num_classes=3, scale=1.0, rng=None):
        rng = rng or np.random.default_rng(0)
        seg_specs = [scale_spec(s, scale) for s in _SEG_SPECS]
        box_specs = [scale_spec(s, scale) for s in _BOX_SPECS]
        modules = [PointCloudModule(s, rng=rng) for s in seg_specs]
        super().__init__(modules, rng=rng)
        self.num_classes = num_classes
        n = [s.n_in for s in seg_specs]
        self.fp3 = FeaturePropagation("seg_fp3", n[2], (1024 + 256, 256, 256), rng=rng)
        self.fp2 = FeaturePropagation("seg_fp2", n[1], (256 + 128, 256, 128), rng=rng)
        self.fp1 = FeaturePropagation("seg_fp1", n[0], (128 + 3, 128, 128), rng=rng)
        self.mask_head = FCHead([128, 64, 2], rng=rng)
        self.box_encoder = [PointCloudModule(s, rng=rng) for s in box_specs]
        self.box_head = FCHead([512, 256, BOX_DIM + num_classes], rng=rng)
        self._box_n_in = box_specs[0].n_in

    def _forward_body(self, ctx, coords, feats, strategy, trace):
        # Stage 1: instance segmentation over the frustum.
        _, _, levels = ctx.run_encoder(
            self.encoder, coords, feats, strategy, trace, keep_intermediates=True
        )
        (c0, f0), (c1, f1), (c2, f2), (c3, f3) = levels
        up2 = ctx.propagate(self.fp3, c2, f2, c3, f3)
        up1 = ctx.propagate(self.fp2, c1, f1, c2, up2)
        up0 = ctx.propagate(self.fp1, c0, f0, c1, up1)
        mask_logits = self.mask_head(up0)  # (nclouds * n_points, 2)

        # Stage 2: box estimation over the points ranked most likely to
        # be on the object (differentiable selection is avoided, as in
        # the original: the mask stage is trained with its own loss).
        scores = mask_logits.data[:, 1] - mask_logits.data[:, 0]
        # Per-cloud top ranking plus the mask-centroid shift.
        box_coords = ctx.select_top_coords(coords, scores, self._box_n_in)
        box_feats = ctx.features_from_coords(box_coords)
        for module in self.box_encoder:
            out = ctx.run_module(module, box_coords, box_feats, strategy, trace)
            box_coords, box_feats = out.coords, out.features
        box_out = self.box_head(box_feats)  # (nclouds, BOX_DIM + classes)

        if trace is not None:
            self._emit_tail(trace)
        return {"mask_logits": ctx.per_point(mask_logits), "box": box_out}

    def _emit_tail(self, trace):
        seg_specs = [m.spec for m in self.encoder]
        self.fp3.emit_trace(trace, n_coarse=seg_specs[2].n_out)
        self.fp2.emit_trace(trace, n_coarse=seg_specs[1].n_out)
        self.fp1.emit_trace(trace, n_coarse=seg_specs[0].n_out)
        self.mask_head.emit_trace(trace, rows=seg_specs[0].n_in)
        self.box_head.emit_trace(trace, rows=1)

    def _emit_trace(self, trace, strategy):
        from ..core import emit_module_trace

        self._emit_encoder_trace(trace, strategy)
        for module in self.box_encoder:
            emit_module_trace(module.spec, strategy, trace)
        self._emit_tail(trace)
