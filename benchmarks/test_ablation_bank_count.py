"""Ablation: PFT buffer bank count.

The paper fixes B=32 banks, noting that "the number of banks B is
limited by the peripheral circuits overhead" while fewer banks raise
bank conflicts.  This ablation sweeps B and shows the latency/area
trade-off that motivates the nominal choice.
"""

from conftest import print_table

from repro.core import ModuleSpec
from repro.hw import AggregationUnit, SRAM
from repro.hw.soc import synthetic_nit

BANKS = (4, 8, 16, 32, 64)
SPEC = ModuleSpec("sa1", 1024, 512, 32, (3, 64, 64, 128))


def test_ablation_bank_count(benchmark):
    nit = synthetic_nit(SPEC)

    def run():
        out = {}
        for banks in BANKS:
            au = AggregationUnit(pft_buffer=SRAM(64, banks=banks, name="pft"))
            r = au.process(nit, 128, 1024)
            out[banks] = (r.cycles, r.conflict_fraction, au.area_mm2())
        return out

    data = benchmark(run)
    print_table(
        "Ablation: PFT bank count (PointNet++ module 1)",
        ["Banks", "Cycles", "Conflict rounds", "AU area (mm^2)"],
        [
            (b, data[b][0], f"{data[b][1] * 100:.0f}%", f"{data[b][2]:.3f}")
            for b in BANKS
        ],
    )
    cycles = [data[b][0] for b in BANKS]
    areas = [data[b][2] for b in BANKS]
    # More banks -> fewer cycles (more parallel gather lanes)...
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))
    # ...at more peripheral area.
    assert all(a <= b for a, b in zip(areas, areas[1:]))
    # Diminishing returns: 32 -> 64 banks buys less than 8 -> 16.
    gain_8_16 = data[8][0] / data[16][0]
    gain_32_64 = data[32][0] / data[64][0]
    assert gain_8_16 > gain_32_64
