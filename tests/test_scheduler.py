"""Tests for the async N/F-overlap scheduler, frontier and schedule lowering."""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.engine import (
    AsyncRunner,
    BatchRunner,
    NeighborIndexCache,
    OverlapExecutor,
    cache as cache_module,
)
from repro.graph import (
    EagerExecutor,
    build_module_graph,
    module_graph,
    node_lane,
    schedule_graph,
)
from repro.networks import ALL_NETWORKS, build_network
from repro.neural import Tensor, no_grad

SMALL = {"num_classes": 4, "scale": 0.0625}


def random_clouds(batch, n, seed=0):
    return np.random.default_rng(seed).normal(size=(batch, n, 3))


def sa1_spec():
    return build_network("PointNet++ (c)", **SMALL).encoder[0].spec


class TestFrontier:
    def test_walks_whole_graph_in_dependency_order(self):
        graph = module_graph(sa1_spec(), "delayed")
        frontier = graph.frontier()
        completed = []
        while not frontier.done:
            ready = frontier.take()
            assert ready, "valid graph must always have ready nodes"
            for node in ready:
                assert all(parent in completed for parent in node.inputs)
                frontier.complete(node.id)
                completed.append(node.id)
        assert sorted(completed) == sorted(n.id for n in graph)
        assert len(frontier) == 0

    def test_search_and_first_matmul_ready_together(self):
        # The delayed rewrite is what makes N/F overlap possible: after
        # input+sample complete, the search and the first hoisted MLP
        # layer are ready simultaneously.
        graph = module_graph(sa1_spec(), "delayed")
        frontier = graph.frontier()
        for node in frontier.take():
            frontier.complete(node.id)
        kinds = sorted(node.kind for node in frontier.ready())
        assert kinds == ["matmul", "search"]

    def test_complete_untaken_node_rejected(self):
        frontier = module_graph(sa1_spec(), "delayed").frontier()
        with pytest.raises(ValueError):
            frontier.complete(0)

    def test_double_complete_rejected(self):
        frontier = module_graph(sa1_spec(), "delayed").frontier()
        node = frontier.take()[0]
        frontier.complete(node.id)
        with pytest.raises(ValueError):
            frontier.complete(node.id)

    def test_complete_reports_unlocked_consumers(self):
        graph = build_module_graph(sa1_spec())
        frontier = graph.frontier()
        taken = {node.kind: node for node in frontier.take()}
        assert frontier.complete(taken["input"].id) == ()
        unlocked = frontier.complete(taken["sample"].id)
        assert [node.kind for node in unlocked] == ["search"]


class TestScheduleLowering:
    def test_lanes(self):
        graph = module_graph(sa1_spec(), "delayed")
        schedule = schedule_graph(graph)
        for entry in schedule:
            expected = "N" if entry.node.kind in ("sample", "search") else "F"
            assert entry.lane == expected
            assert node_lane(entry.node) == expected
            assert schedule.lane(entry.node.id) == expected

    def test_overlap_only_after_delaying_aggregation(self):
        # The strategy story as a static schedule property: original
        # order cannot overlap N with F; delayed overlaps the whole MLP
        # chain; limited overlaps exactly the first (linear) product.
        spec = sa1_spec()
        by_strategy = {
            strategy: schedule_graph(module_graph(spec, strategy))
            for strategy in ("original", "delayed", "limited")
        }
        assert by_strategy["original"].overlap_steps() == ()
        assert len(by_strategy["delayed"].overlap_steps()) >= 1
        assert len(by_strategy["limited"].overlap_steps()) >= 1

        overlapped = {
            entry.node.kind
            for step in by_strategy["delayed"].overlap_steps()
            for entry in step
        }
        assert overlapped == {"search", "matmul"}

    def test_steps_respect_dependencies(self):
        for strategy in ("original", "delayed", "limited"):
            schedule = schedule_graph(module_graph(sa1_spec(), strategy))
            steps = {entry.node.id: entry.step for entry in schedule}
            for entry in schedule:
                for parent in entry.node.inputs:
                    assert steps[parent] < entry.step
            assert schedule.width >= 1

    def test_describe_mentions_overlap(self):
        text = schedule_graph(module_graph(sa1_spec(), "delayed")).describe()
        assert "overlap step" in text and "search[N]" in text


class ThreadSafeLog:
    """Observer capturing start/finish events from any thread."""

    def __init__(self):
        self.lock = threading.Lock()
        self.events = []

    def __call__(self, event, node):
        with self.lock:
            self.events.append((event, node.id))

    def started_before_finished(self, node_id, parent_id):
        starts = {}
        finishes = {}
        for index, (event, nid) in enumerate(self.events):
            if event == "start":
                starts.setdefault(nid, index)
            else:
                finishes[nid] = index
        return finishes[parent_id] < starts[node_id]


class TestOverlapExecutor:
    @pytest.mark.parametrize("strategy", ["original", "delayed", "limited"])
    def test_bit_exact_vs_eager_executor(self, strategy):
        net = build_network("PointNet++ (c)", **SMALL)
        module = net.encoder[0]
        cloud = random_clouds(1, net.n_points, seed=7)[0]
        graph = module.graph(strategy)
        with no_grad(), ThreadPoolExecutor(max_workers=2) as pool:
            eager = EagerExecutor().run(graph, module, cloud, Tensor(cloud.copy()))
            overlap = OverlapExecutor(pool).run(
                graph, module, cloud, Tensor(cloud.copy())
            )
        np.testing.assert_array_equal(eager.features.data, overlap.features.data)
        np.testing.assert_array_equal(eager.indices, overlap.indices)
        np.testing.assert_array_equal(eager.centroid_idx, overlap.centroid_idx)

    @pytest.mark.parametrize("strategy", ["original", "delayed", "limited"])
    @pytest.mark.parametrize("pooled", [False, True])
    def test_dependency_order_property(self, strategy, pooled):
        # No node starts before every producer has finished — in
        # particular, no aggregation (F side) runs before its neighbor
        # search (N producer), no matter how the threads interleave.
        # One observer per module run: node ids restart per graph.
        net = build_network("PointNet++ (c)", **SMALL)
        cloud = random_clouds(1, net.n_points, seed=8)[0]
        pool = ThreadPoolExecutor(max_workers=3) if pooled else None
        try:
            for trial in range(5):
                coords, feats = cloud, Tensor(cloud.copy())
                with no_grad():
                    for module in net.encoder:
                        graph = module.graph(strategy)
                        log = ThreadSafeLog()
                        executor = OverlapExecutor(pool, observer=log)
                        out = module(coords, feats, strategy=strategy,
                                     executor=executor)
                        coords, feats = out.coords, out.features
                        assert len(log.events) == 2 * len(graph)
                        for node in graph:
                            for parent in node.inputs:
                                assert log.started_before_finished(
                                    node.id, parent
                                ), (
                                    f"{graph.name}: node {node.id} "
                                    f"({node.kind}) started before producer "
                                    f"{parent} finished (trial {trial})"
                                )
        finally:
            if pool is not None:
                pool.shutdown()

    def test_stalls_on_cyclic_graph(self):
        graph = module_graph(sa1_spec(), "delayed")
        broken = graph.copy()
        # Frontier over a graph whose first node waits on a later one
        # can never make progress; the executor must say so rather than
        # spin or deadlock.
        from repro.graph import Node

        nodes = list(broken.nodes)
        nodes[0] = Node(nodes[0].id, nodes[0].kind, (nodes[-1].id,),
                        dict(nodes[0].attrs), nodes[0].phase)
        broken.nodes = nodes
        net = build_network("PointNet++ (c)", **SMALL)
        cloud = random_clouds(1, net.n_points, seed=9)[0]
        with no_grad(), pytest.raises(RuntimeError, match="stalled"):
            OverlapExecutor(None).run(
                broken, net.encoder[0], cloud, Tensor(cloud.copy())
            )


class TestAsyncRunner:
    @pytest.mark.parametrize("name", ALL_NETWORKS)
    def test_bit_exact_vs_eager_all_networks(self, name):
        scale = 0.03125 if "(s)" in name else 0.0625
        net = build_network(name, num_classes=4, scale=scale)
        clouds = random_clouds(2, net.n_points, seed=50)
        runner = AsyncRunner(net, max_workers=2, in_flight=2)
        result = runner.run(clouds)
        expected = BatchRunner(net).run_sequential(clouds)
        if isinstance(result.outputs, list):  # detection: dict per cloud
            assert len(result.outputs) == len(expected.outputs)
            for got, want in zip(result.outputs, expected.outputs):
                assert set(got) == set(want)
                for key in got:
                    np.testing.assert_array_equal(got[key].data, want[key].data)
        else:
            np.testing.assert_array_equal(result.outputs, expected.outputs)
        assert result.batch_size == 2

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backends_agree(self, backend):
        net = build_network("PointNet++ (c)", **SMALL)
        clouds = random_clouds(3, net.n_points, seed=51)
        runner = AsyncRunner(net, backend=backend, max_workers=2)
        expected = BatchRunner(net).run_sequential(clouds)
        np.testing.assert_array_equal(
            runner.run(clouds).outputs, expected.outputs
        )

    def test_single_worker_degrades_to_serial_frontier(self):
        net = build_network("PointNet++ (c)", **SMALL)
        clouds = random_clouds(2, net.n_points, seed=52)
        runner = AsyncRunner(net, max_workers=1)
        assert runner.in_flight == 1
        expected = BatchRunner(net).run_sequential(clouds)
        np.testing.assert_array_equal(
            runner.run(clouds).outputs, expected.outputs
        )

    def test_bad_config_rejected(self):
        net = build_network("PointNet++ (c)", **SMALL)
        with pytest.raises(ValueError):
            AsyncRunner(net, backend="bogus")
        with pytest.raises(ValueError):
            AsyncRunner(net, max_workers=0)
        with pytest.raises(ValueError):
            AsyncRunner(net, in_flight=-1)

    def test_cache_shared_across_in_flight_clouds(self):
        net = build_network("PointNet++ (c)", **SMALL)
        cloud = random_clouds(1, net.n_points, seed=53)[0]
        # The same cloud four times, all in flight concurrently: the
        # cache must end up with one entry per module search, not four.
        clouds = np.stack([cloud] * 4)
        cache = NeighborIndexCache(maxsize=64)
        runner = AsyncRunner(net, cache=cache, max_workers=4, in_flight=4)
        result = runner.run(clouds)
        expected = BatchRunner(net).run_sequential(clouds)
        np.testing.assert_array_equal(result.outputs, expected.outputs)
        stats = cache.stats()
        assert stats["misses"] == len(net.encoder)
        assert stats["hits"] == 3 * len(net.encoder)

    def test_pools_persist_across_runs_and_close_is_reusable(self):
        net = build_network("PointNet++ (c)", **SMALL)
        clouds = random_clouds(2, net.n_points, seed=54)
        with AsyncRunner(net, max_workers=2, in_flight=2) as runner:
            first = runner.run(clouds)
            pools = (runner._search_pool, runner._cloud_pool)
            assert all(pool is not None for pool in pools)
            second = runner.run(clouds)
            assert (runner._search_pool, runner._cloud_pool) == pools
        assert runner._search_pool is None  # context exit released them
        runner.close()  # idempotent
        third = runner.run(clouds)  # pools recreated on demand
        runner.close()
        np.testing.assert_array_equal(first.outputs, second.outputs)
        np.testing.assert_array_equal(first.outputs, third.outputs)

    def test_plan_exposed_like_batch_runner(self):
        net = build_network("PointNet++ (c)", **SMALL)
        runner = AsyncRunner(net)
        assert runner.plan.network == net.name
        assert len(runner.plan) == len(net.encoder)


class TestCacheSingleFlight:
    def test_concurrent_identical_searches_compute_once(self, monkeypatch):
        calls = []
        barrier = threading.Barrier(4)
        real = cache_module.raw_knn

        def slow_knn(*args, **kwargs):
            calls.append(threading.get_ident())
            return real(*args, **kwargs)

        monkeypatch.setattr(cache_module, "raw_knn", slow_knn)
        cache = NeighborIndexCache(maxsize=8)
        cloud = random_clouds(1, 64, seed=60)[0]
        results = []

        def lookup():
            barrier.wait()
            results.append(cache.knn(cloud, cloud[:16], 4))

        threads = [threading.Thread(target=lookup) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1, "concurrent duplicates must compute once"
        assert cache.misses == 1 and cache.hits == 3
        for indices, distances in results[1:]:
            np.testing.assert_array_equal(indices, results[0][0])
            np.testing.assert_array_equal(distances, results[0][1])

    def test_failed_compute_releases_waiters(self):
        cache = NeighborIndexCache(maxsize=8)
        attempts = []

        def compute():
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("first owner dies")
            return ("ok", "ok")

        with pytest.raises(RuntimeError):
            cache._single(("key",), compute)
        # The key is no longer pending: the next lookup takes over.
        assert cache._single(("key",), compute) == ("ok", "ok")

    def test_ball_single_flight_path(self):
        cache = NeighborIndexCache(maxsize=8)
        cloud = random_clouds(1, 48, seed=61)[0]
        first = cache.ball(cloud, cloud[:8], 0.8, 4)
        second = cache.ball(cloud, cloud[:8], 0.8, 4)
        assert cache.hits == 1 and cache.misses == 1
        np.testing.assert_array_equal(first[0], second[0])
