"""Approximate aggregation — the paper's proposed future work (§V-B).

    "An alternative way to resolve bank-conflict would be to simply
    ignore conflicted banks, essentially approximating the aggregation
    operation.  We leave it to future work to explore this optimization
    and its impact on the overall accuracy."

This module explores exactly that: an AU variant whose AGU issues only
the first unconflicted address per bank each round and *drops* the
conflicted remainder after ``max_rounds`` rounds, plus helpers that
quantify the resulting functional error (how far the max-reduction
drifts when some neighbors never reach the reduction tree).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .aggregation_unit import AggregationUnit

__all__ = ["ApproximateAggregationUnit", "ApproxResult", "dropped_neighbor_error"]


@dataclass
class ApproxResult:
    """Cycle/accuracy accounting of one approximate aggregation pass."""

    cycles: int
    exact_cycles: int
    dropped_fraction: float
    kept_mask: np.ndarray  # (n_centroids, K) — True where the neighbor
    #                        survived the round limit

    @property
    def speedup_vs_exact(self):
        return self.exact_cycles / self.cycles if self.cycles else 1.0


class ApproximateAggregationUnit(AggregationUnit):
    """AU that bounds the multi-round loop and drops the overflow.

    ``max_rounds = None`` degenerates to the exact unit.  With
    ``max_rounds = r`` an NIT entry finishes in at most r rounds; any
    neighbor whose bank already served r addresses is skipped, trading
    aggregation accuracy for bounded latency.
    """

    def __init__(self, max_rounds=2, **kwargs):
        super().__init__(**kwargs)
        if max_rounds is not None and max_rounds < 1:
            raise ValueError("max_rounds must be >= 1 (or None for exact)")
        self.max_rounds = max_rounds

    def process_approximate(self, nit_indices, feature_dim, n_points):
        """Simulate the bounded-round gather.

        Returns an :class:`ApproxResult` with the survivor mask, so the
        functional impact can be evaluated on real feature tables via
        :func:`dropped_neighbor_error`.
        """
        nit_indices = np.asarray(nit_indices)
        if nit_indices.ndim != 2:
            raise ValueError("nit_indices must be (n_centroids, K)")
        n_centroids, k = nit_indices.shape
        parts = self.n_partitions(n_points, feature_dim)
        cols = -(-feature_dim // parts)

        kept = np.zeros((n_centroids, k), dtype=bool)
        total_rounds = 0
        exact_rounds = 0
        for row in range(n_centroids):
            banks = nit_indices[row] % self.banks
            # Order of service within a bank follows entry order.
            served = {}
            for j, bank in enumerate(banks):
                order = served.get(bank, 0)
                served[bank] = order + 1
                if self.max_rounds is None or order < self.max_rounds:
                    kept[row, j] = True
            loads = np.bincount(banks, minlength=self.banks)
            exact_rounds += int(loads.max())
            bounded = loads if self.max_rounds is None else \
                np.minimum(loads, self.max_rounds)
            total_rounds += int(bounded.max())

        cycles = total_rounds * cols * parts \
            + n_centroids * cols * parts + n_centroids * parts
        exact_cycles = exact_rounds * cols * parts \
            + n_centroids * cols * parts + n_centroids * parts
        return ApproxResult(
            cycles=cycles,
            exact_cycles=exact_cycles,
            dropped_fraction=float(1.0 - kept.mean()),
            kept_mask=kept,
        )


def dropped_neighbor_error(pft, nit_indices, kept_mask):
    """Relative error of the max-reduction when dropped neighbors are
    excluded.

    ``pft`` is the (n_points, M) feature table; the exact output per
    centroid is ``max_k pft[nit[k]]``, the approximate one maxes only
    the kept neighbors.  Returns the mean relative L2 error across
    centroids — the quantity future work would trade against accuracy.
    """
    pft = np.asarray(pft, dtype=np.float64)
    nit_indices = np.asarray(nit_indices)
    gathered = pft[nit_indices]  # (n_centroids, K, M)
    exact = gathered.max(axis=1)
    masked = np.where(kept_mask[:, :, None], gathered, -np.inf)
    # A centroid with every neighbor dropped cannot occur (round 0
    # always serves one address per bank), but guard anyway.
    approx = np.where(
        np.isfinite(masked).any(axis=1), masked.max(axis=1), 0.0
    )
    num = np.linalg.norm(approx - exact, axis=1)
    den = np.maximum(np.linalg.norm(exact, axis=1), 1e-12)
    return float((num / den).mean())
