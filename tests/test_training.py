"""Integration tests for the training loops (the Fig 16 machinery)."""

import numpy as np
import pytest

from repro.data import SyntheticFrustum, SyntheticModelNet, SyntheticShapeNet
from repro.networks import (
    build_network,
    evaluate_classifier,
    evaluate_detector,
    evaluate_segmenter,
    train_classifier,
    train_detector,
    train_segmenter,
)

SCALE = 0.03125  # 32-point clouds — the smallest viable scale


@pytest.fixture(scope="module")
def cls_data():
    return SyntheticModelNet(num_classes=3, n_points=64, train_per_class=4,
                             test_per_class=2, seed=0, rotate=False)


class TestClassifierTraining:
    def test_loss_decreases(self, cls_data):
        net = build_network("PointNet++ (c)", num_classes=3, scale=SCALE,
                            rng=np.random.default_rng(0))
        n = net.n_points
        result = train_classifier(
            net, cls_data.train_clouds[:, :n], cls_data.train_labels,
            epochs=3, strategy="delayed", seed=1,
        )
        assert result.improved
        assert len(result.losses) == 3

    def test_all_strategies_trainable(self, cls_data):
        for strategy in ("original", "delayed", "limited"):
            net = build_network("DGCNN (c)", num_classes=3, scale=SCALE,
                                rng=np.random.default_rng(0))
            n = net.n_points
            result = train_classifier(
                net, cls_data.train_clouds[:, :n], cls_data.train_labels,
                epochs=2, strategy=strategy, seed=1,
            )
            assert np.isfinite(result.losses).all(), strategy

    def test_evaluation_returns_fraction(self, cls_data):
        net = build_network("PointNet++ (c)", num_classes=3, scale=SCALE,
                            rng=np.random.default_rng(0))
        n = net.n_points
        acc = evaluate_classifier(
            net, cls_data.test_clouds[:, :n], cls_data.test_labels,
            strategy="delayed",
        )
        assert 0.0 <= acc <= 1.0

    def test_evaluation_restores_train_mode(self, cls_data):
        net = build_network("PointNet++ (c)", num_classes=3, scale=SCALE)
        n = net.n_points
        evaluate_classifier(net, cls_data.test_clouds[:, :n],
                            cls_data.test_labels)
        assert net.training


class TestSegmenterTraining:
    def test_loss_decreases(self):
        ds = SyntheticShapeNet(categories=("table",), n_points=64,
                               train_per_category=3, test_per_category=1,
                               seed=0, rotate=False)
        net = build_network("PointNet++ (s)", num_classes=ds.num_classes,
                            scale=SCALE, rng=np.random.default_rng(0))
        n = net.n_points
        result = train_segmenter(
            net, ds.train_clouds[:, :n], ds.train_labels[:, :n],
            epochs=3, strategy="delayed", seed=1,
        )
        assert result.improved
        miou = evaluate_segmenter(
            net, ds.test_clouds[:, :n], ds.test_labels[:, :n],
            ds.num_classes, strategy="delayed",
        )
        assert 0.0 <= miou <= 1.0


class TestDetectorTraining:
    def test_loss_decreases(self):
        ds = SyntheticFrustum(n_samples=4, n_points=128, seed=0)
        clouds, masks, boxes = ds.normalized()
        net = build_network("F-PointNet", scale=0.125,
                            rng=np.random.default_rng(0))
        n = net.n_points
        result = train_detector(net, clouds[:3, :n], masks[:3, :n],
                                boxes[:3], epochs=3, strategy="delayed",
                                seed=1)
        assert result.improved
        mask_acc, mean_iou = evaluate_detector(
            net, clouds[3:, :n], masks[3:, :n], boxes[3:],
            strategy="delayed",
        )
        assert 0.0 <= mask_acc <= 1.0
        assert 0.0 <= mean_iou <= 1.0


class TestTrainResult:
    def test_empty(self):
        from repro.networks import TrainResult

        r = TrainResult()
        assert np.isnan(r.final_loss)
        assert not r.improved

    def test_improved(self):
        from repro.networks import TrainResult

        assert TrainResult(losses=[2.0, 1.0]).improved
        assert not TrainResult(losses=[1.0, 2.0]).improved
