"""Int8 quantized backend: reference-calibrated scales, saturating GEMMs.

The quantization scheme is symmetric and post-training:

* **weights** carry per-output-channel scales — ``max|w| / 127`` per
  column of the ``(in, out)`` GEMM operand, so one saturated outlier
  channel cannot flatten every other channel's resolution;
* **activations** carry one per-tensor scale per *graph site* (the
  :class:`~repro.backend.params.ParameterTable` entry key of the
  segment consuming them), calibrated by running the **float64
  reference program** over seeded standard-normal batches — the bench
  workload distribution — with a :class:`CalibrationRecorder` attached
  through the existing ``run(on_kernel=...)`` hook.  Calibration is a
  deterministic function of (weights, strategy, seed): two runs
  produce byte-identical :class:`ScaleTable` serializations, which
  keeps :class:`~repro.backend.aot.ProgramCache` digests stable.

The kernel itself (:meth:`Int8Backend.qmatmul`) quantizes its input
with saturating round-to-nearest at ±127, multiplies int8 × int8 with
**int32 accumulation** (integer addition is associative, so quantized
GEMMs are bit-reproducible under any batch composition — stronger than
the BLAS float paths), and dequantizes per output channel back to
float32.  Everything dtype-sensitive *around* the GEMMs — neighbor
search, inverse-distance interpolation, aggregation, batch norm —
stays in float32, mirroring how :class:`~repro.backend.array.NumpyBackend`
pins ``search_dtype``: :attr:`Int8Backend.dtype` is ``float32``, so
inter-kernel activations, arena buffers and searches never see int8.

Quantized segments pack as ``("qlinear", qweight, w_scale, bias,
a_scale)`` ops whose parts are all ndarrays, so the existing
:class:`~repro.backend.params.ParameterTable` machinery — content
hashing, dedupe, :meth:`~repro.backend.params.ParameterTable.pack` /
``from_buffer`` zero-copy transport into worker pools — works on int8
tables unchanged.
"""

from __future__ import annotations

import hashlib
import json
import threading
import weakref

import numpy as np

from .array import ArrayBackend, get_backend

__all__ = [
    "CALIBRATION_SEED",
    "CalibrationRecorder",
    "Int8Backend",
    "QMAX",
    "ScaleTable",
    "calibrate_scales",
    "dequantize",
    "quantize",
    "quantize_weight",
    "weight_scales",
]

#: Symmetric signed-int8 saturation bound.  ±127 (not -128) keeps the
#: grid symmetric, so negation commutes with quantization.
QMAX = 127

#: Default seed of the calibration workload (seeded standard-normal
#: batches, the same distribution the bench rows draw).
CALIBRATION_SEED = 2020


def quantize(x, scale):
    """Saturating symmetric quantization: ``clip(rint(x / scale), ±127)``.

    ``scale`` broadcasts, so a per-channel ``(out,)`` scale row
    quantizes an ``(in, out)`` weight in one call.  Values beyond
    ``±127 * scale`` saturate exactly to ±127.
    """
    q = np.rint(np.asarray(x) / scale)
    np.clip(q, -QMAX, QMAX, out=q)
    return q.astype(np.int8)


def dequantize(q, scale):
    """Back to float32: ``q * scale`` (scale broadcasts per channel)."""
    return np.asarray(q, dtype=np.float32) * np.asarray(scale,
                                                        dtype=np.float32)


def weight_scales(weight):
    """Per-output-channel scales of an ``(in, out)`` GEMM weight.

    ``max|w| / 127`` down each column, as float32.  An all-zero channel
    gets scale 1.0 — any scale maps 0 to 0, and 1.0 keeps the
    dequantization factor finite.
    """
    amax = np.max(np.abs(np.asarray(weight, dtype=np.float64)), axis=0)
    scales = amax / QMAX
    scales[scales == 0.0] = 1.0
    return scales.astype(np.float32)


def quantize_weight(weight):
    """``(qweight int8, w_scale float32)`` for one GEMM weight."""
    scales = weight_scales(weight)
    qweight = quantize(np.asarray(weight, dtype=np.float64),
                       scales.astype(np.float64))
    return np.ascontiguousarray(qweight), scales


class ScaleTable:
    """Per-site activation ranges from one calibration pass.

    Keys are the graph sites the parameter table itself uses —
    ``("module", midx, layer, variant)`` / ``("ref", ref, stage)`` —
    so one table serves the single-cloud and batched arities of every
    program compiled from the same network graph.  Serialization uses
    ``float.hex`` so equal tables are byte-identical, never merely
    close: the determinism regression test (and the program-cache
    digest stability it guards) compares the JSON bytes directly.
    """

    def __init__(self, amax):
        self.amax = {tuple(site): float(peak) for site, peak in amax.items()}

    def scale(self, site):
        """The float32 activation scale of one graph site."""
        site = tuple(site)
        if site not in self.amax:
            raise KeyError(
                f"no calibrated activation range for site {site!r}; "
                "the scale table was calibrated on a different graph"
            )
        peak = self.amax[site]
        return np.float32(peak / QMAX) if peak > 0.0 else np.float32(1.0)

    def sites(self):
        return sorted(self.amax, key=repr)

    def to_json(self):
        """Canonical byte-stable serialization (``float.hex`` values)."""
        entries = [[list(site), self.amax[site].hex()]
                   for site in self.sites()]
        return json.dumps(
            {"format": 1, "kind": "scale-table", "qmax": QMAX,
             "amax": entries},
            sort_keys=True, separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text):
        data = json.loads(text)
        if data.get("kind") != "scale-table":
            raise ValueError("not a serialized scale table")
        return cls({tuple(site): float.fromhex(peak)
                    for site, peak in data["amax"]})

    @property
    def content_hash(self):
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def __eq__(self, other):
        return isinstance(other, ScaleTable) and self.amax == other.amax

    def __len__(self):
        return len(self.amax)

    def __repr__(self):
        return f"ScaleTable({len(self.amax)} sites, " \
               f"{self.content_hash[:12]})"


class CalibrationRecorder:
    """Records per-site activation peaks during a reference-program run.

    Pass one as ``on_kernel=`` to
    :meth:`~repro.backend.runtime.KernelProgram.run`: the runtime
    additionally routes :meth:`observe` (through ``ctx["observe"]``)
    the graph site and input array of every linear segment — including
    the intermediates of folded GEMM chains, which never appear in the
    kernel environment the ``on_kernel`` hook sees.
    """

    def __init__(self):
        self.amax = {}

    def observe(self, site, x):
        peak = float(np.max(np.abs(x))) if x.size else 0.0
        site = tuple(site)
        if peak > self.amax.get(site, -1.0):
            self.amax[site] = peak

    def __call__(self, pos, label, env, ctx):
        """The per-kernel hook is a no-op; capture happens in observe."""

    def table(self):
        return ScaleTable(self.amax)


def calibrate_scales(network, strategy, batch=8, rounds=2,
                     seed=CALIBRATION_SEED, clouds=None):
    """Calibrate a :class:`ScaleTable` against the float64 reference.

    Runs the batched float64 reference program with a
    :class:`CalibrationRecorder` attached — over ``rounds`` seeded
    standard-normal batches by default, or over an explicit
    ``(B, n_points, 3)`` calibration set when ``clouds`` is given (the
    quant bench calibrates on its training clouds).  Everything here is
    deterministic under a fixed seed — same weights, same strategy,
    same seed/clouds ⇒ byte-identical table.
    """
    from ..neural import no_grad
    from .runtime import KernelProgram

    ngraph = network.network_graph(strategy)
    program = KernelProgram(ngraph, network, get_backend("float64"),
                            batched=True)
    recorder = CalibrationRecorder()
    with no_grad():
        if clouds is not None:
            program.run(np.asarray(clouds, dtype=np.float64),
                        on_kernel=recorder)
        else:
            rng = np.random.default_rng(seed)
            for _ in range(max(1, int(rounds))):
                batch_clouds = rng.normal(
                    size=(int(batch), network.n_points, 3))
                program.run(batch_clouds, on_kernel=recorder)
    return recorder.table()


class Int8Backend(ArrayBackend):
    """Int8 GEMM cores inside a float32 activation envelope.

    ``dtype`` is float32, so every inter-kernel activation, scratch
    buffer, neighbor search and aggregation runs exactly as on the
    float32 backend; only the inside of each linear segment dips to
    int8 (quantize input → int8 GEMM with int32 accumulation →
    per-channel dequantize).  Scales come from ``scales=`` when given,
    otherwise the backend auto-calibrates once per (weight
    fingerprint, strategy) on first export and memoizes — workers that
    receive a packed table never calibrate at all.
    """

    name = "int8"
    dtype = np.dtype(np.float32)
    search_dtype = np.dtype(np.float32)

    def __init__(self, scales=None, calibration_batch=8,
                 calibration_rounds=2, calibration_seed=CALIBRATION_SEED):
        self.preset_scales = scales
        self.calibration_batch = int(calibration_batch)
        self.calibration_rounds = int(calibration_rounds)
        self.calibration_seed = int(calibration_seed)
        self._scale_cache = {}
        self._shadows = {}
        self._lock = threading.Lock()

    # The lock and the weakref-keyed shadow cache are process-local
    # state; re-create both after unpickling (pool initializers ship
    # backend instances across processes).
    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_lock", None)
        state.pop("_shadows", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._shadows = {}
        self._lock = threading.Lock()

    # -- calibration ---------------------------------------------------------

    def scales_for(self, ngraph, network=None):
        """The scale table for one network graph, calibrating at most once."""
        if self.preset_scales is not None:
            return self.preset_scales
        if network is None or getattr(network, "_parameters_stripped",
                                      False):
            raise ValueError(
                "int8 export needs the live network to calibrate "
                "activation scales against the float64 reference; pool "
                "workers should attach a packed parameter table instead "
                "of re-exporting"
            )
        from .aot import network_fingerprint

        key = (network_fingerprint(network), ngraph.strategy)
        with self._lock:
            cached = self._scale_cache.get(key)
        if cached is not None:
            return cached
        table = calibrate_scales(
            network, ngraph.strategy, batch=self.calibration_batch,
            rounds=self.calibration_rounds, seed=self.calibration_seed,
        )
        with self._lock:
            return self._scale_cache.setdefault(key, table)

    def segment_packer(self, ngraph, network=None):
        """The per-Linear packing hook ``ParameterTable.for_graph`` calls.

        Returns a closure over this graph's scale table; each call
        packs one segment head as a ``("qlinear", qweight int8,
        w_scale float32, bias float32|None, a_scale float32)`` op.
        """
        scales = self.scales_for(ngraph, network)

        def pack(linear, site, weight_only):
            qweight, w_scale = quantize_weight(linear.weight.data)
            bias = None
            if not weight_only and linear.bias is not None:
                bias = np.ascontiguousarray(
                    np.asarray(linear.bias.data).astype(np.float32)
                )
            a_scale = np.asarray([scales.scale(site)], dtype=np.float32)
            return ("qlinear", qweight, w_scale, bias, a_scale)

        return pack

    # -- kernels -------------------------------------------------------------

    def _weight_shadow(self, qweight):
        """A BLAS-ready float view of one packed int8 weight, cached.

        numpy's integer matmul never reaches BLAS, so the GEMM runs
        over integer-*valued* floats instead: every int8 product is
        exact in float32 while partial sums stay below 2**24, i.e. for
        up to ``2**24 / 127**2 ≈ 1040`` input channels; wider weights
        shadow in float64, where int8 accumulation is exact up to
        2**53.  Either way the result is bit-identical to an int8 ×
        int8 → int32 GEMM.  Shadows are cached per weight (weakref
        eviction) — one cast per program lifetime, not per call.
        """
        key = id(qweight)
        with self._lock:
            entry = self._shadows.get(key)
            if entry is not None and entry[0]() is qweight:
                return entry[1]
        dtype = np.float32 if qweight.shape[0] * QMAX * QMAX < 2 ** 24 \
            else np.float64
        shadow = np.ascontiguousarray(qweight, dtype=dtype)
        ref = weakref.ref(qweight,
                          lambda _: self._shadows.pop(key, None))
        with self._lock:
            self._shadows[key] = (ref, shadow)
        return shadow

    def qmatmul(self, x, qweight, w_scale, a_scale, out=None):
        """Quantized GEMM: int8 × int8 → int32, dequantized to float32.

        The activation quantizes with saturating round-to-nearest at
        ±127 in float32 — exactly :func:`quantize` — and the integer
        accumulation runs through a BLAS GEMM over the weight's float
        shadow (see :meth:`_weight_shadow`; bit-identical to int32
        accumulation, so the result is independent of batch
        composition).  ``out`` receives the dequantized float32
        product.
        """
        scale = np.float32(a_scale[0])
        shadow = self._weight_shadow(qweight)
        q = np.rint(np.asarray(x, dtype=np.float32) / scale)
        np.clip(q, -QMAX, QMAX, out=q)
        if shadow.dtype != np.float32:
            q = q.astype(shadow.dtype)
        acc = np.matmul(q, shadow)
        if out is None:
            out = np.empty(acc.shape, dtype=self.dtype)
        return np.multiply(acc, w_scale * scale, out=out)
