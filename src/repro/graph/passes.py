"""Graph-rewrite passes: the paper's program transforms, as passes.

Delayed aggregation (§IV) is a reordering of the N/A/F operator stream:
hoist the shared MLP past aggregation, exploiting that max-reduction
distributes exactly over subtracting the centroid row
(``max_k(p_k - p_i) == max_k(p_k) - p_i``; the identity
:func:`repro.core.equivalence.max_subtract_gap` verifies numerically).
The limited (GNN-style, §VII-C) variant hoists only the first
matrix-vector product, which is exactly linear.  Here both are
implemented as rewrites over the original-order graph, so execution,
batching, trace analytics and the hardware models all consume the same
transformed program instead of three hand-maintained copies.

Passes are ``graph -> graph`` callables; :data:`PIPELINES` names the
pass list per strategy and :func:`module_graph` memoizes the result per
(spec, strategy).
"""

from __future__ import annotations

import functools
from dataclasses import replace

from .build import build_module_graph
from .ir import Node

__all__ = [
    "PIPELINES",
    "dead_code_elimination",
    "delay_aggregation",
    "fuse_aggregation",
    "limit_delay",
    "module_graph",
    "run_pipeline",
]


def _original_pattern(graph):
    """The (input, sample, search, gather, subtract, matmuls, reduce)
    skeleton every original-order module graph has."""
    return (
        graph.only("input"),
        graph.only("sample"),
        graph.only("search"),
        graph.only("gather"),
        graph.only("subtract"),
        graph.find("matmul"),
        graph.only("reduce_max"),
    )


def delay_aggregation(graph):
    """Rewrite ``F(A(N(p), p))`` into ``A(F(N(p)), F(p))`` (Fig 8).

    The whole MLP chain is hoisted before the gather: it now runs over
    the ``n_in`` input points (and is marked parallelizable — it can
    overlap the neighbor search on a different engine).  Aggregation
    becomes gather → reduce-max → subtract: the centroid feature is
    subtracted *after* the reduction, which is exact by the max-subtract
    identity.  The final MLP output is the Point Feature Table.
    """
    graph = graph.copy()
    inp, smp, srch, gth, sub, matmuls, rm = _original_pattern(graph)
    if sub.attrs.get("mode") != "pre":
        raise ValueError("delay_aggregation expects an original-order graph")
    out_dim = matmuls[-1].attrs["out_dim"]

    hoisted = []
    prev = inp
    for mm in matmuls:
        mm = replace(mm, inputs=(prev.id,), parallelizable=True)
        mm = mm.with_attrs(rows="n_in")
        hoisted.append(mm)
        prev = mm
    hoisted[-1] = hoisted[-1].with_attrs(pft=True)

    srch = replace(srch, parallelizable=True)
    gth = replace(gth, inputs=(hoisted[-1].id, srch.id))
    gth = gth.with_attrs(feature_dim=out_dim)
    rm = replace(rm, inputs=(gth.id,), phase="A")
    rm = rm.with_attrs(feature_dim=out_dim)
    sub = replace(sub, inputs=(rm.id, hoisted[-1].id, smp.id))
    sub = sub.with_attrs(rows="n_out", dim=out_dim, mode="post")

    return graph.replace_nodes(
        [inp, smp, *hoisted, srch, gth, rm, sub], outputs=(sub.id,)
    ).validate()


def limit_delay(graph):
    """Hoist only the first matrix-vector product (the GNN variant).

    The first Linear's weight multiply is exactly distributive over the
    centroid subtraction; its bias cancels in the subtraction, so an
    ``epilogue`` node re-adds it (and replays the layer's activation)
    after aggregation before the remaining layers run over the
    ``n_out*k`` aggregated rows.  The hoisted product's output is the
    (narrow) Point Feature Table.
    """
    graph = graph.copy()
    inp, smp, srch, gth, sub, matmuls, rm = _original_pattern(graph)
    if sub.attrs.get("mode") != "pre":
        raise ValueError("limit_delay expects an original-order graph")
    hidden = matmuls[0].attrs["out_dim"]

    first = replace(matmuls[0], inputs=(inp.id,), parallelizable=True)
    first = first.with_attrs(rows="n_in", weight_only=True, pft=True)
    srch = replace(srch, parallelizable=True)
    gth = replace(gth, inputs=(first.id, srch.id))
    gth = gth.with_attrs(feature_dim=hidden)
    sub = replace(sub, inputs=(gth.id, first.id, smp.id))
    sub = sub.with_attrs(dim=hidden)

    fresh = max(n.id for n in graph) + 1
    epilogue = Node(fresh, "epilogue", (sub.id,), {"layer": 0}, phase="F")

    rest = []
    prev = epilogue
    for mm in matmuls[1:]:
        mm = replace(mm, inputs=(prev.id,))
        rest.append(mm)
        prev = mm
    rm = replace(rm, inputs=(prev.id,))

    return graph.replace_nodes(
        [inp, smp, first, srch, gth, sub, epilogue, *rest, rm],
        outputs=(rm.id,),
    ).validate()


def fuse_aggregation(graph):
    """Fuse gather [+ reduce-max] + subtract into one aggregation node.

    This is the granularity the hardware aggregation unit (Fig 13-15)
    consumes — one NIT-driven pass over the point feature table — and it
    saves the executors two dispatches per module.  The fused node
    remembers its constituents, so trace lowering re-expands it and the
    emitted operator records are unchanged.
    """
    graph = graph.copy()
    fused = []
    skip = set()
    for node in list(graph.nodes):
        if node.id in skip:
            continue
        if node.kind == "gather":
            consumers = graph.consumers(node.id)
            if len(consumers) == 1 and consumers[0].kind == "subtract" \
                    and consumers[0].attrs.get("mode") == "pre":
                sub = consumers[0]
                agg = Node(
                    sub.id, "aggregate",
                    (node.inputs[0], node.inputs[1], sub.inputs[2]),
                    {**node.attrs, "reduce": False,
                     "rows": sub.attrs["rows"], "dim": sub.attrs["dim"]},
                    phase="A",
                )
                fused.append(agg)
                skip.add(sub.id)
                continue
            if len(consumers) == 1 and consumers[0].kind == "reduce_max":
                rm = consumers[0]
                rm_consumers = graph.consumers(rm.id)
                if len(rm_consumers) == 1 and rm_consumers[0].kind == "subtract" \
                        and rm_consumers[0].attrs.get("mode") == "post":
                    sub = rm_consumers[0]
                    agg = Node(
                        sub.id, "aggregate",
                        (node.inputs[0], node.inputs[1], sub.inputs[2]),
                        {**node.attrs, "reduce": True,
                         "reduce_phase": rm.phase,
                         "rows": sub.attrs["rows"], "dim": sub.attrs["dim"]},
                        phase="A",
                    )
                    fused.append(agg)
                    skip.update((rm.id, sub.id))
                    continue
        fused.append(node)

    # The fused node reuses the pattern's *last* id, so downstream input
    # references (e.g. the matmul chain after an original-order fuse)
    # remain valid without rewiring.
    return graph.replace_nodes(fused, outputs=graph.outputs).validate()


def dead_code_elimination(graph):
    """Drop nodes with no path to the graph outputs."""
    graph = graph.copy()
    by_id = {n.id: n for n in graph}
    live = set()
    frontier = list(graph.outputs)
    while frontier:
        node_id = frontier.pop()
        if node_id in live:
            continue
        live.add(node_id)
        frontier.extend(by_id[node_id].inputs)
    return graph.replace_nodes(
        [n for n in graph if n.id in live], outputs=graph.outputs
    ).validate()


#: Pass pipeline per strategy.  ``original`` is the built form plus the
#: standard cleanup; ``delayed``/``limited`` apply their rewrite first.
PIPELINES = {
    "original": (fuse_aggregation, dead_code_elimination),
    "delayed": (delay_aggregation, fuse_aggregation, dead_code_elimination),
    "limited": (limit_delay, fuse_aggregation, dead_code_elimination),
}


def run_pipeline(graph, strategy):
    """Apply the strategy's pass pipeline to ``graph`` and return the result."""
    if strategy not in PIPELINES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {tuple(PIPELINES)}"
        )
    for pipeline_pass in PIPELINES[strategy]:
        graph = pipeline_pass(graph)
    return graph


@functools.lru_cache(maxsize=512)
def module_graph(spec, strategy):
    """The (memoized) lowered graph of one module spec under a strategy."""
    return run_pipeline(build_module_graph(spec), strategy)
