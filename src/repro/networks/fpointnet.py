"""F-PointNet [41] — frustum-based 3D object detection on KITTI.

F-PointNet lifts a 2D detection to a 3D frustum of points, segments the
object points inside the frustum, and regresses an amodal 3D box from
the segmented points.  The paper profiles the point cloud backbone; the
neighbor searches "return mostly 128 neighbors" (§VII-D), which makes
F-PointNet the stress case for the aggregation unit's bank conflicts.

Our reproduction implements both stages (instance segmentation +
box estimation) on PointNet++-style set-abstraction backbones.
"""

from __future__ import annotations

import numpy as np

from ..core import ModuleSpec, PointCloudModule
from .base import FCHead, FeaturePropagation, PointCloudNetwork, scale_spec

__all__ = ["FPointNet"]


_SEG_SPECS = (
    ModuleSpec("seg_sa1", n_in=1024, n_out=128, k=128, mlp_dims=(3, 64, 64, 128)),
    ModuleSpec("seg_sa2", n_in=128, n_out=32, k=64, mlp_dims=(128, 128, 128, 256)),
    ModuleSpec("seg_sa3", n_in=32, n_out=1, k=32, mlp_dims=(256, 256, 512, 1024)),
)

_BOX_SPECS = (
    ModuleSpec("box_sa1", n_in=512, n_out=128, k=128, mlp_dims=(3, 128, 128, 256)),
    ModuleSpec("box_sa2", n_in=128, n_out=1, k=128, mlp_dims=(256, 256, 512)),
)

#: Box regression output: center (3) + size (3) + heading (1).
BOX_DIM = 7


class FPointNet(PointCloudNetwork):
    """F-PointNet: frustum segmentation + amodal box regression."""

    name = "F-PointNet"
    task = "detection"
    dataset = "KITTI"
    year = 2018
    paper_n_points = 1024

    def __init__(self, num_classes=3, scale=1.0, rng=None):
        rng = rng or np.random.default_rng(0)
        seg_specs = [scale_spec(s, scale) for s in _SEG_SPECS]
        box_specs = [scale_spec(s, scale) for s in _BOX_SPECS]
        modules = [PointCloudModule(s, rng=rng) for s in seg_specs]
        super().__init__(modules, rng=rng)
        self.num_classes = num_classes
        n = [s.n_in for s in seg_specs]
        self.fp3 = FeaturePropagation("seg_fp3", n[2], (1024 + 256, 256, 256), rng=rng)
        self.fp2 = FeaturePropagation("seg_fp2", n[1], (256 + 128, 256, 128), rng=rng)
        self.fp1 = FeaturePropagation("seg_fp1", n[0], (128 + 3, 128, 128), rng=rng)
        self.mask_head = FCHead([128, 64, 2], rng=rng)
        self.box_encoder = [PointCloudModule(s, rng=rng) for s in box_specs]
        self.box_head = FCHead([512, 256, BOX_DIM + num_classes], rng=rng)
        self._box_n_in = box_specs[0].n_in

    def _build_graph(self, nb):
        # Stage 1: instance segmentation over the frustum.
        coords, feats = nb.input()
        levels = nb.encoder(self.encoder, coords, feats)
        (c0, f0), (c1, f1), (c2, f2), (c3, f3) = levels
        up2 = nb.propagate(self.fp3, c2, f2, c3, f3)
        up1 = nb.propagate(self.fp2, c1, f1, c2, up2)
        up0 = nb.propagate(self.fp1, c0, f0, c1, up1)
        mask_logits = nb.head(self.mask_head, up0,
                              rows=self.n_points)  # (nclouds * n_points, 2)

        # Stage 2: box estimation over the points ranked most likely to
        # be on the object (differentiable selection is avoided, as in
        # the original: the mask stage is trained with its own loss).
        # The select node ranks per cloud and applies the mask-centroid
        # shift; the box encoder is a second module chain seeded from
        # the selected coordinates.
        box_coords = nb.select(coords, mask_logits, self._box_n_in)
        box_feats = nb.lift(box_coords)
        for module in self.box_encoder:
            box_coords, box_feats = nb.module(module, box_coords, box_feats)
        box_out = nb.head(self.box_head, box_feats,
                          rows=1)  # (nclouds, BOX_DIM + classes)

        nb.output(mask_logits, name="mask_logits", per_point=True)
        nb.output(box_out, name="box")
