"""Ablation: approximate aggregation (the paper's §V-B future work).

    "An alternative way to resolve bank-conflict would be to simply
    ignore conflicted banks, essentially approximating the aggregation
    operation."

Sweeps the round budget of the bounded AU and reports the emergent
latency/drop/functional-error trade-off on a realistic index stream.
"""

import numpy as np
from conftest import print_table

from repro.core import ModuleSpec
from repro.hw import ApproximateAggregationUnit, dropped_neighbor_error
from repro.hw.soc import synthetic_nit

SPEC = ModuleSpec("sa1", 1024, 512, 32, (3, 64, 64, 128))
ROUND_BUDGETS = (1, 2, 3, None)


def test_ablation_approx_aggregation(benchmark):
    nit = synthetic_nit(SPEC)
    pft = np.random.default_rng(0).normal(size=(1024, 128)) ** 2  # post-ReLU

    def run():
        out = {}
        for budget in ROUND_BUDGETS:
            au = ApproximateAggregationUnit(max_rounds=budget)
            r = au.process_approximate(nit, 128, 1024)
            err = dropped_neighbor_error(pft, nit, r.kept_mask)
            out[budget] = (r.speedup_vs_exact, r.dropped_fraction, err)
        return out

    data = benchmark(run)
    print_table(
        "Ablation: bounded-round (approximate) aggregation",
        ["Max rounds", "Speedup vs exact", "Dropped neighbors",
         "Reduction error"],
        [
            (
                "exact" if budget is None else budget,
                f"{data[budget][0]:.2f}x",
                f"{data[budget][1] * 100:.1f}%",
                f"{data[budget][2]:.4f}",
            )
            for budget in ROUND_BUDGETS
        ],
    )
    # The exact configuration drops nothing and costs the most cycles.
    assert data[None][1] == 0.0 and data[None][2] == 0.0
    # Tighter budgets: more speedup, more drops, more error - monotone.
    speedups = [data[b][0] for b in (1, 2, 3)]
    drops = [data[b][1] for b in (1, 2, 3)]
    errors = [data[b][2] for b in (1, 2, 3)]
    assert speedups[0] >= speedups[1] >= speedups[2] >= 1.0
    assert drops[0] >= drops[1] >= drops[2]
    assert errors[0] >= errors[1] >= errors[2]
    # A 2-round budget keeps the reduction error small — the regime
    # where the paper speculates accuracy could be retained.
    assert data[2][2] < 0.2
