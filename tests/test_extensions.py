"""Tests for the extension modules: uniform-grid search, approximate
aggregation (the paper's future-work item), checkpointing, the report
generator and the CLI."""

import numpy as np
import pytest

from repro.hw import (
    AggregationUnit,
    ApproximateAggregationUnit,
    dropped_neighbor_error,
)
from repro.neighbors import KDTree, UniformGrid, knn_brute_force
from repro.neural import SharedMLP, load_checkpoint, save_checkpoint


def cloud(n=200, seed=0):
    return np.random.default_rng(seed).normal(size=(n, 3))


class TestUniformGrid:
    def test_radius_matches_naive(self):
        pts = cloud(300, seed=1)
        grid = UniformGrid(pts, cell_size=0.5)
        q = pts[0]
        hits = grid.query_radius(q, 0.8)
        naive = np.nonzero(np.sqrt(((pts - q) ** 2).sum(1)) <= 0.8)[0]
        np.testing.assert_array_equal(np.sort(hits), naive)

    def test_knn_matches_brute_force(self):
        pts = cloud(256, seed=2)
        grid = UniformGrid(pts, cell_size=0.4)
        for qi in (0, 10, 100):
            g_idx, g_dist = grid.query(pts[qi], k=5)
            _, b_dist = knn_brute_force(pts, pts[qi:qi + 1], 5)
            np.testing.assert_allclose(np.sort(g_dist), b_dist[0], atol=1e-9)

    def test_knn_agrees_with_kdtree(self):
        pts = cloud(128, seed=3)
        grid = UniformGrid(pts, cell_size=0.7)
        tree = KDTree(pts)
        g_idx, g_dist = grid.query(pts[7], k=4)
        t_idx, t_dist = tree.query(pts[7], k=4)
        np.testing.assert_allclose(g_dist, t_dist, atol=1e-9)

    def test_occupancy_sums_to_n(self):
        pts = cloud(100, seed=4)
        grid = UniformGrid(pts, cell_size=1.0)
        assert grid.occupancy().sum() == 100
        assert grid.n_cells == len(grid.occupancy())

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformGrid(np.zeros((0, 3)), 1.0)
        with pytest.raises(ValueError):
            UniformGrid(cloud(10), 0.0)
        with pytest.raises(ValueError):
            UniformGrid(cloud(10), 1.0).query(np.zeros(3), k=11)
        with pytest.raises(ValueError):
            UniformGrid(cloud(10), 1.0).query_radius(np.zeros(3), -1)

    def test_far_query(self):
        pts = cloud(64, seed=5)
        grid = UniformGrid(pts, cell_size=0.5)
        idx, dist = grid.query(np.array([50.0, 50.0, 50.0]), k=3)
        _, b_dist = knn_brute_force(pts, np.array([[50.0, 50.0, 50.0]]), 3)
        np.testing.assert_allclose(dist, b_dist[0], atol=1e-9)


class TestApproximateAggregation:
    def setup_method(self):
        self.rng = np.random.default_rng(0)
        self.nit = self.rng.integers(0, 1024, size=(128, 32))

    def test_exact_mode_drops_nothing(self):
        au = ApproximateAggregationUnit(max_rounds=None)
        r = au.process_approximate(self.nit, 64, 1024)
        assert r.dropped_fraction == 0.0
        assert r.kept_mask.all()
        assert r.cycles == r.exact_cycles

    def test_bounded_rounds_drop_and_speed_up(self):
        au = ApproximateAggregationUnit(max_rounds=1)
        r = au.process_approximate(self.nit, 64, 1024)
        assert r.dropped_fraction > 0.0
        assert r.speedup_vs_exact > 1.0

    def test_more_rounds_fewer_drops(self):
        drops = []
        for rounds in (1, 2, 4):
            au = ApproximateAggregationUnit(max_rounds=rounds)
            drops.append(
                au.process_approximate(self.nit, 64, 1024).dropped_fraction
            )
        assert drops[0] >= drops[1] >= drops[2]

    def test_round_zero_always_serves_each_bank(self):
        au = ApproximateAggregationUnit(max_rounds=1)
        r = au.process_approximate(self.nit, 64, 1024)
        # Every entry keeps at least one neighbor per occupied bank.
        assert r.kept_mask.any(axis=1).all()

    def test_functional_error_bounded(self):
        au = ApproximateAggregationUnit(max_rounds=2)
        r = au.process_approximate(self.nit, 64, 1024)
        pft = self.rng.normal(size=(1024, 64))
        err = dropped_neighbor_error(pft, self.nit, r.kept_mask)
        exact_err = dropped_neighbor_error(
            pft, self.nit, np.ones_like(r.kept_mask, dtype=bool)
        )
        assert exact_err == 0.0
        assert 0.0 < err < 1.0  # approximate but in the right regime

    def test_validation(self):
        with pytest.raises(ValueError):
            ApproximateAggregationUnit(max_rounds=0)
        au = ApproximateAggregationUnit()
        with pytest.raises(ValueError):
            au.process_approximate(np.zeros(3, dtype=int), 8, 16)

    def test_inherits_exact_interface(self):
        au = ApproximateAggregationUnit(max_rounds=2)
        assert isinstance(au, AggregationUnit)
        exact = au.process(self.nit, 64, 1024)  # exact path still works
        assert exact.cycles > 0


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        a = SharedMLP([3, 16, 8], rng=np.random.default_rng(0))
        b = SharedMLP([3, 16, 8], rng=np.random.default_rng(9))
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, a, metadata={"strategy": "delayed", "epoch": 3})
        state, meta = load_checkpoint(path, module=b)
        assert meta == {"strategy": "delayed", "epoch": 3}
        from repro.neural import Tensor

        x = Tensor(np.random.default_rng(1).normal(size=(4, 3)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_load_without_module(self, tmp_path):
        mlp = SharedMLP([2, 4], rng=np.random.default_rng(0))
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, mlp)
        state, meta = load_checkpoint(path)
        assert meta == {}
        assert len(state) == len(mlp.state_dict())

    def test_shape_mismatch_raises(self, tmp_path):
        a = SharedMLP([3, 16, 8])
        b = SharedMLP([3, 8, 8])
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, a)
        with pytest.raises((ValueError, KeyError)):
            load_checkpoint(path, module=b)


class TestReport:
    def test_format_table(self):
        from repro.profiling import format_table

        text = format_table("T", ["a", "bb"], [(1, 2), (33, 4)])
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert "33" in lines[3]

    def test_characterization_report_contains_networks(self):
        from repro.profiling import characterization_report

        text = characterization_report(networks=("PointNet++ (c)",))
        assert "PointNet++ (c)" in text
        assert "Reduction" in text

    def test_soc_report_contains_geomean(self):
        from repro.profiling import soc_report

        text = soc_report(networks=("PointNet++ (c)",))
        assert "GEOMEAN" in text
        assert "Mesorasi-HW" in text


class TestCLI:
    def test_networks_command(self, capsys):
        from repro.cli import main

        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        assert "F-PointNet" in out

    def test_trace_command(self, capsys):
        from repro.cli import main

        assert main(["trace", "PointNet++ (c)", "--strategy", "delayed"]) == 0
        out = capsys.readouterr().out
        assert "NeighborSearchOp" in out
        assert "MLP MACs" in out

    def test_simulate_command(self, capsys):
        from repro.cli import main

        assert main(["simulate", "PointNet++ (c)", "--config",
                     "mesorasi_hw"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out
        assert "AU sa1" in out

    def test_unknown_command_exits(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCLIReport:
    def test_report_command(self, capsys):
        from repro.cli import main

        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "GPU characterization" in out
        assert "SoC evaluation" in out
        assert "GEOMEAN" in out
